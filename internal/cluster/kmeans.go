// Package cluster implements k-means clustering (k-means++ seeding, Lloyd
// iterations, empty-cluster repair) and centroid-representative selection.
// It is the selection engine of Algorithm 2: row vectors and column vectors
// are clustered and the points nearest each centroid become the sub-table's
// rows and columns (the paper uses sklearn's KMeans for this).
//
// The native input is a contiguous f32.Matrix (KMeansMatrix); the
// slice-of-slices KMeans entry point packs and delegates. The assignment
// step — the O(n·k·dim) bulk of every Lloyd iteration — runs across workers
// and prunes distance computations that provably cannot win, while the
// centroid-update step stays serial: its float accumulation order is part of
// the determinism contract, so results are bit-identical to the serial
// implementation at any worker count.
package cluster

import (
	"math"
	"math/rand"
	"sort"

	"subtab/internal/f32"
)

// Options configures k-means.
type Options struct {
	// MaxIter bounds Lloyd iterations (default 50).
	MaxIter int
	// Seed drives k-means++ initialization.
	Seed int64
	// Tolerance stops early when centroids move less than this (default 1e-4).
	Tolerance float64
	// Workers bounds the parallelism of the assignment step (default
	// GOMAXPROCS). Results are identical at any setting.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	return o
}

// Result holds a clustering.
type Result struct {
	K          int
	Assign     []int       // point index -> cluster
	Centers    [][]float32 // k centroids (views into one contiguous slab)
	Sizes      []int       // points per cluster
	Iterations int
}

// KMeans clusters slice-of-slices points by packing them into a flat matrix
// and delegating to KMeansMatrix. Points must share one dimension.
func KMeans(points [][]float32, k int, opt Options) *Result {
	return KMeansMatrix(f32.FromRows(points), k, opt)
}

// KMeansMatrix clusters the rows of pts into k clusters. When
// k >= pts.R every point becomes its own cluster.
func KMeansMatrix(pts f32.Matrix, k int, opt Options) *Result {
	opt = opt.withDefaults()
	n := pts.R
	if n == 0 || k <= 0 {
		return &Result{K: 0}
	}
	if k >= n {
		centers := f32.New(n, pts.C)
		copy(centers.Data, pts.Data)
		res := &Result{K: n, Assign: make([]int, n), Centers: centers.Rows(), Sizes: make([]int, n)}
		for i := 0; i < n; i++ {
			res.Assign[i] = i
			res.Sizes[i] = 1
		}
		return res
	}
	dim := pts.C
	rng := rand.New(rand.NewSource(opt.Seed))
	workers := opt.Workers
	if workers <= 0 {
		workers = f32.Workers(n)
	}

	centers := seedPlusPlus(pts, k, rng, workers)
	assign := make([]int, n)
	sizes := make([]int, k)
	next := f32.New(k, dim)
	counts := make([]int, k)

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		// Assignment step: every point's nearest center is independent, so
		// the row range fans out across workers. Each scan is seeded with
		// the point's previous center (points rarely migrate, so that bound
		// is usually the final one and every other center aborts within a
		// few components). Equivalence to the plain index-order scan: a
		// center achieving the true minimum has all prefix sums <= the
		// incumbent bound, so SqDistBounded returns its exact distance, and
		// the explicit lowest-index tie-break reproduces the serial scan's
		// first-wins behaviour even on exact float ties (duplicate rows).
		f32.ParallelRange(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				p := pts.Row(i)
				best := assign[i]
				bestD := f32.SqDist(p, centers.Row(best))
				for c := 0; c < k; c++ {
					if c == best {
						continue
					}
					d := f32.SqDistBounded(p, centers.Row(c), bestD)
					if d < bestD || (d == bestD && c < best) {
						best, bestD = c, d
					}
				}
				assign[i] = best
			}
		})
		for c := range sizes {
			sizes[c] = 0
		}
		for _, c := range assign {
			sizes[c]++
		}
		repairEmptyClusters(pts, centers, assign, sizes)
		// Update step, serial: summing points in index order is part of the
		// bit-determinism contract (float addition is not associative).
		f32.Zero(next.Data)
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			f32.Add(next.Row(c), pts.Row(i))
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			f32.Scale(1/float32(counts[c]), next.Row(c))
			moved += math.Sqrt(f32.SqDist(next.Row(c), centers.Row(c)))
			copy(centers.Row(c), next.Row(c))
		}
		if moved < opt.Tolerance {
			iter++
			break
		}
	}
	for c := range sizes {
		sizes[c] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	return &Result{K: k, Assign: assign, Centers: centers.Rows(), Sizes: sizes, Iterations: iter}
}

// repairEmptyClusters reassigns, for every empty cluster, the point farthest
// from its current center (never stealing a singleton). The scan is serial
// in index order — first-found farthest wins on exact ties — so the repair
// is deterministic and shared bit-for-bit by the exact and mini-batch paths.
func repairEmptyClusters(pts, centers f32.Matrix, assign, sizes []int) {
	n := pts.R
	for c := range sizes {
		if sizes[c] > 0 {
			continue
		}
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			if sizes[assign[i]] <= 1 {
				continue
			}
			d := f32.SqDist(pts.Row(i), centers.Row(assign[i]))
			if d > farD {
				far, farD = i, d
			}
		}
		if far >= 0 {
			sizes[assign[far]]--
			assign[far] = c
			sizes[c] = 1
		}
	}
}

// Representatives returns, for each cluster, the index of the point nearest
// its centroid — the "centroid selection" of Algorithm 2. Clusters are
// ordered by descending size so that callers taking a prefix favour the
// dominant patterns; empty clusters are skipped.
//
// Deprecated: use RepresentativesMatrix, which takes the pipeline's native
// flat matrix and avoids the slice-of-slices packing copy.
func (r *Result) Representatives(points [][]float32) []int {
	return r.RepresentativesMatrix(f32.FromRows(points))
}

// RepresentativesMatrix is Representatives over a flat matrix (no packing).
// The per-cluster nearest-point scan fans out in chunks whose partial argmins
// merge in chunk order (MapReduceOrdered): within a chunk the ascending scan
// keeps the first achiever of each minimum, and the ordered strict-less merge
// keeps the earliest chunk's — so the winner is the lowest-indexed
// min-achiever, exactly as in a serial scan, at any worker count.
func (r *Result) RepresentativesMatrix(pts f32.Matrix) []int {
	if r.K == 0 {
		return nil
	}
	type partial struct {
		best  []int
		bestD []float64
	}
	best := make([]int, r.K)
	bestD := make([]float64, r.K)
	for c := range best {
		best[c] = -1
		bestD[c] = math.Inf(1)
	}
	f32.MapReduceOrdered(pts.R, f32.Workers(pts.R), func(start, end int) partial {
		p := partial{best: make([]int, r.K), bestD: make([]float64, r.K)}
		for c := range p.best {
			p.best[c] = -1
			p.bestD[c] = math.Inf(1)
		}
		for i := start; i < end; i++ {
			c := r.Assign[i]
			d := f32.SqDistBounded(pts.Row(i), r.Centers[c], p.bestD[c])
			if d < p.bestD[c] {
				p.best[c], p.bestD[c] = i, d
			}
		}
		return p
	}, func(p partial) {
		for c := range best {
			if p.best[c] >= 0 && p.bestD[c] < bestD[c] {
				best[c], bestD[c] = p.best[c], p.bestD[c]
			}
		}
	})
	// Order clusters by size (desc), stable by cluster id.
	order := make([]int, r.K)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort; k is small
		for j := i; j > 0 && r.Sizes[order[j]] > r.Sizes[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]int, 0, r.K)
	for _, c := range order {
		if best[c] >= 0 {
			out = append(out, best[c])
		}
	}
	return out
}

// RepresentativesDispersed selects one representative per cluster like
// Representatives, but among each cluster's q most-central members it picks
// the one farthest from the representatives already chosen (greedy max-min
// dispersion). Centrality keeps representatives typical of their pattern;
// the dispersion tie-break keeps the selected set visibly diverse — the two
// goals of the paper's centroid-based selection.
//
// Deprecated: use RepresentativesDispersedMatrix, which takes the pipeline's
// native flat matrix and avoids the slice-of-slices packing copy.
func (r *Result) RepresentativesDispersed(points [][]float32, q int) []int {
	return r.RepresentativesDispersedMatrix(f32.FromRows(points), q)
}

// RepresentativesDispersedMatrix is RepresentativesDispersed over a flat
// matrix (no packing). The greedy dispersion scan is serial in cluster-size
// order with index-order tie-breaks, so the selection is one fixed function
// of (clustering, pts, q).
func (r *Result) RepresentativesDispersedMatrix(pts f32.Matrix, q int) []int {
	if r.K == 0 {
		return nil
	}
	if q <= 1 {
		return r.RepresentativesMatrix(pts)
	}
	// Per cluster: the q members nearest the centroid.
	type cand struct {
		idx int
		d   float64
	}
	cands := make([][]cand, r.K)
	for i := 0; i < pts.R; i++ {
		c := r.Assign[i]
		cands[c] = append(cands[c], cand{i, f32.SqDist(pts.Row(i), r.Centers[c])})
	}
	for c := range cands {
		sort.Slice(cands[c], func(x, y int) bool { return cands[c][x].d < cands[c][y].d })
		if len(cands[c]) > q {
			cands[c] = cands[c][:q]
		}
	}
	order := make([]int, r.K)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if r.Sizes[order[x]] != r.Sizes[order[y]] {
			return r.Sizes[order[x]] > r.Sizes[order[y]]
		}
		return order[x] < order[y]
	})
	var out []int
	for _, c := range order {
		if len(cands[c]) == 0 {
			continue
		}
		best, bestScore := -1, -1.0
		for _, cd := range cands[c] {
			minD := math.Inf(1)
			for _, sel := range out {
				if d := f32.SqDist(pts.Row(cd.idx), pts.Row(sel)); d < minD {
					minD = d
				}
			}
			if len(out) == 0 {
				minD = 0
			}
			// Prefer far-from-selected; break ties toward centrality.
			score := minD - 1e-9*cd.d
			if best < 0 || score > bestScore {
				best, bestScore = cd.idx, score
			}
		}
		if len(out) == 0 {
			best = cands[c][0].idx // first cluster: the most central member
		}
		out = append(out, best)
	}
	return out
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting. The
// rng draws and the D² accumulation stay serial (their order is part of the
// determinism contract); the per-point distance refreshes fan out across
// workers with disjoint writes.
func seedPlusPlus(pts f32.Matrix, k int, rng *rand.Rand, workers int) f32.Matrix {
	n := pts.R
	centers := f32.New(k, pts.C)
	copy(centers.Row(0), pts.Row(rng.Intn(n)))
	dists := make([]float64, n)
	first := centers.Row(0)
	f32.ParallelRange(n, workers, func(start, end int) {
		for i := start; i < end; i++ {
			dists[i] = f32.SqDist(pts.Row(i), first)
		}
	})
	for m := 1; m < k; m++ {
		total := 0.0
		for _, d := range dists {
			total += d
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n) // all points identical to a center
		} else {
			target := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, d := range dists {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := centers.Row(m)
		copy(c, pts.Row(idx))
		f32.ParallelRange(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				if d := f32.SqDistBounded(pts.Row(i), c, dists[i]); d < dists[i] {
					dists[i] = d
				}
			}
		})
	}
	return centers
}

// sqDist returns the squared Euclidean distance (kept for in-package
// callers; the implementation lives in the f32 kernel set).
func sqDist(a, b []float32) float64 { return f32.SqDist(a, b) }

// Inertia returns the total within-cluster squared distance — the k-means
// objective, useful for tests and ablations.
func (r *Result) Inertia(points [][]float32) float64 {
	if r.K == 0 {
		return 0
	}
	s := 0.0
	for i, p := range points {
		s += f32.SqDist(p, r.Centers[r.Assign[i]])
	}
	return s
}
