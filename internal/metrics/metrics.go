// Package metrics implements the paper's informativeness metrics for
// sub-tables: cell coverage (Def. 3.6), diversity (Def. 3.7), and the
// combined score (Eq. 3).
//
// Cell coverage of a sub-table counts the cells of the *full* table that are
// describable by association rules covered by the sub-table — a rule is
// covered when all its columns are selected and at least one selected row
// satisfies it — normalized by upcov, the number of cells describable by any
// rule at all. Diversity is one minus the average pairwise Jaccard
// similarity of the sub-table's rows over their binned values.
package metrics

import (
	"subtab/internal/binning"
	"subtab/internal/bitset"
	"subtab/internal/rules"
)

// SubTable identifies a candidate sub-table by row and column indices into
// the full table.
type SubTable struct {
	Rows []int
	Cols []int
}

// Evaluator scores sub-tables against a fixed binned table and rule set. It
// precomputes upcov and reuses scratch buffers across calls; it is not safe
// for concurrent use (Clone one per goroutine).
type Evaluator struct {
	B     *binning.Binned
	Rules []rules.Rule
	Alpha float64 // combined-score balance, paper default 0.5

	upcov   int
	scratch []*bitset.Set // per-column covered-row accumulators
	rowSet  *bitset.Set
	colSet  []bool
}

// NewEvaluator builds an evaluator; alpha is the combined-score weight on
// cell coverage (Eq. 3), 0.5 in the paper.
func NewEvaluator(b *binning.Binned, rs []rules.Rule, alpha float64) *Evaluator {
	e := &Evaluator{B: b, Rules: rs, Alpha: alpha}
	n, m := b.NumRows(), b.NumCols()
	e.scratch = make([]*bitset.Set, m)
	for c := range e.scratch {
		e.scratch[c] = bitset.New(n)
	}
	e.rowSet = bitset.New(n)
	e.colSet = make([]bool, m)
	e.upcov = e.computeUpcov()
	return e
}

// Clone returns an independent evaluator sharing the (immutable) table and
// rules.
func (e *Evaluator) Clone() *Evaluator {
	return NewEvaluator(e.B, e.Rules, e.Alpha)
}

// Upcov returns the normalization constant of Def. 3.6 (d3): the number of
// cells of T describable by any rule in R.
func (e *Evaluator) Upcov() int { return e.upcov }

func (e *Evaluator) computeUpcov() int {
	for c := range e.scratch {
		e.scratch[c].Clear()
	}
	for i := range e.Rules {
		r := &e.Rules[i]
		for _, c := range r.Cols {
			e.scratch[c].Or(r.Tuples)
		}
	}
	total := 0
	for c := range e.scratch {
		total += e.scratch[c].Count()
	}
	return total
}

// CoveredCells returns the raw number of cells of T described by rules
// covered by the sub-table (the numerator of Def. 3.6 before normalizing).
func (e *Evaluator) CoveredCells(st SubTable) int {
	e.rowSet.Clear()
	for _, r := range st.Rows {
		e.rowSet.Add(r)
	}
	for c := range e.colSet {
		e.colSet[c] = false
	}
	for _, c := range st.Cols {
		e.colSet[c] = true
	}
	for c := range e.scratch {
		e.scratch[c].Clear()
	}
	for i := range e.Rules {
		r := &e.Rules[i]
		ok := true
		for _, c := range r.Cols {
			if !e.colSet[c] {
				ok = false
				break
			}
		}
		if !ok || !r.Tuples.Intersects(e.rowSet) {
			continue
		}
		for _, c := range r.Cols {
			e.scratch[c].Or(r.Tuples)
		}
	}
	total := 0
	for _, c := range st.Cols {
		total += e.scratch[c].Count()
	}
	return total
}

// CellCoverage returns cellCov_R(T, T_sub) ∈ [0, 1] (Def. 3.6). With an
// empty rule set coverage is defined as 0.
func (e *Evaluator) CellCoverage(st SubTable) float64 {
	if e.upcov == 0 {
		return 0
	}
	return float64(e.CoveredCells(st)) / float64(e.upcov)
}

// CoveredRules returns the indices (into the evaluator's rule slice) of the
// rules covered by the sub-table — used by the UI to highlight patterns.
func (e *Evaluator) CoveredRules(st SubTable) []int {
	e.rowSet.Clear()
	for _, r := range st.Rows {
		e.rowSet.Add(r)
	}
	for c := range e.colSet {
		e.colSet[c] = false
	}
	for _, c := range st.Cols {
		e.colSet[c] = true
	}
	var out []int
	for i := range e.Rules {
		r := &e.Rules[i]
		ok := true
		for _, c := range r.Cols {
			if !e.colSet[c] {
				ok = false
				break
			}
		}
		if ok && r.Tuples.Intersects(e.rowSet) {
			out = append(out, i)
		}
	}
	return out
}

// Jaccard returns the similarity of two rows over the given columns: the
// fraction of columns whose values fall in the same bin (Def. 3.7). Missing
// values share the dedicated missing bin and therefore count as similar.
func Jaccard(b *binning.Binned, r1, r2 int, cols []int) float64 {
	if len(cols) == 0 {
		return 0
	}
	same := 0
	for _, c := range cols {
		if b.Code(c, r1) == b.Code(c, r2) {
			same++
		}
	}
	return float64(same) / float64(len(cols))
}

// Diversity returns divers(T_sub, B) = 1 − avg pairwise Jaccard (Def. 3.7).
// Sub-tables with fewer than two rows are maximally diverse (1).
func Diversity(b *binning.Binned, st SubTable) float64 {
	k := len(st.Rows)
	if k < 2 {
		return 1
	}
	sum := 0.0
	pairs := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += Jaccard(b, st.Rows[i], st.Rows[j], st.Cols)
			pairs++
		}
	}
	return 1 - sum/float64(pairs)
}

// Diversity computes the diversity metric via the evaluator's table.
func (e *Evaluator) Diversity(st SubTable) float64 { return Diversity(e.B, st) }

// Combined returns the combined informativeness score of Eq. 3:
// α·cellCov + (1−α)·diversity.
func (e *Evaluator) Combined(st SubTable) float64 {
	return e.Alpha*e.CellCoverage(st) + (1-e.Alpha)*Diversity(e.B, st)
}
