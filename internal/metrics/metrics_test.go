package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"subtab/internal/binning"
	"subtab/internal/bitset"
	"subtab/internal/rules"
	"subtab/internal/table"
)

// paperExample builds the table T̂ of Figure 3 plus the rule family the
// paper defines for it: all rules with CANCELLED on the right-hand side, at
// least two other columns on the left, holding for at least two rows.
func paperExample(t *testing.T) (*binning.Binned, []rules.Rule) {
	t.Helper()
	tab := table.New("paper")
	add := func(name string, vals []string) {
		if err := tab.AddColumn(table.NewCategorical(name, vals)); err != nil {
			t.Fatal(err)
		}
	}
	add("CANCELLED", []string{"1", "1", "1", "1", "0", "0", "0", "0"})
	add("DEP_TIME", []string{"", "", "", "", "morning", "morning", "evening", "evening"})
	add("YEAR", []string{"2015", "2015", "2015", "2015", "2016", "2015", "2015", "2015"})
	add("SCHED_DEP", []string{"afternoon", "afternoon", "morning", "morning", "morning", "morning", "evening", "afternoon"})
	add("DISTANCE", []string{"short", "medium", "medium", "short", "medium", "medium", "long", "long"})
	b, err := binning.Bin(tab, binning.Options{MaxBins: 20})
	if err != nil {
		t.Fatal(err)
	}
	return b, referenceRules(b, 0, 2, 2)
}

// referenceRules enumerates by brute force all rules whose RHS is a bin of
// the target column (index targetCol), whose LHS spans at least minLHS other
// columns (one item each), and which hold for at least minRows rows.
// Itemset-duplicate rules are emitted once (coverage-equivalent).
func referenceRules(b *binning.Binned, targetCol, minLHS, minRows int) []rules.Rule {
	n := b.NumRows()
	m := b.NumCols()
	others := []int{}
	for c := 0; c < m; c++ {
		if c != targetCol {
			others = append(others, c)
		}
	}
	seen := map[string]bool{}
	var out []rules.Rule
	var cols []int
	var rec func(start int)
	rec = func(start int) {
		if len(cols) >= minLHS {
			// One rule per row's value combination on cols + target.
			for r := 0; r < n; r++ {
				items := make(rules.Itemset, 0, len(cols)+1)
				for _, c := range cols {
					items = append(items, b.Item(c, r))
				}
				items = append(items, b.Item(targetCol, r))
				sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
				k := items.String()
				if seen[k] {
					continue
				}
				seen[k] = true
				tuples := bitset.New(n)
				for r2 := 0; r2 < n; r2++ {
					holds := true
					for _, it := range items {
						c := b.ColOfItem(it)
						if b.Item(c, r2) != it {
							holds = false
							break
						}
					}
					if holds {
						tuples.Add(r2)
					}
				}
				if tuples.Count() < minRows {
					continue
				}
				ruleCols := append(append([]int{}, cols...), targetCol)
				sort.Ints(ruleCols)
				lhs := items[:len(items)-1]
				out = append(out, rules.Rule{
					LHS: append(rules.Itemset{}, lhs...), RHS: rules.Itemset{items[len(items)-1]},
					Items:   append(rules.Itemset{}, items...),
					Support: float64(tuples.Count()) / float64(n),
					Tuples:  tuples, Cols: ruleCols,
				})
			}
		}
		for i := start; i < len(others); i++ {
			cols = append(cols, others[i])
			rec(i + 1)
			cols = cols[:len(cols)-1]
		}
	}
	rec(0)
	return out
}

func colIdx(t *testing.T, b *binning.Binned, names ...string) []int {
	t.Helper()
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = b.T.ColumnIndex(n)
		if out[i] < 0 {
			t.Fatalf("unknown column %q", n)
		}
	}
	return out
}

// TestPaperExample reproduces the worked example of §3.2 exactly:
// upcov = 36; T̂(1) covers 28 cells (0.78), T̂(2) 26 (0.72), T̂(3) 24;
// diversity 0.83 for T̂(1) and 0.92 for T̂(3); combined 0.80 and 0.79.
func TestPaperExample(t *testing.T) {
	b, rs := paperExample(t)
	e := NewEvaluator(b, rs, 0.5)

	if e.Upcov() != 36 {
		t.Fatalf("upcov = %d, want 36", e.Upcov())
	}

	rows := []int{0, 4, 6} // paper rows 1, 5, 7
	st1 := SubTable{Rows: rows, Cols: colIdx(t, b, "CANCELLED", "DEP_TIME", "YEAR", "DISTANCE")}
	st2 := SubTable{Rows: rows, Cols: colIdx(t, b, "CANCELLED", "DEP_TIME", "YEAR", "SCHED_DEP")}
	st3 := SubTable{Rows: rows, Cols: colIdx(t, b, "CANCELLED", "DEP_TIME", "SCHED_DEP", "DISTANCE")}

	if got := e.CoveredCells(st1); got != 28 {
		t.Errorf("T̂(1) covered cells = %d, want 28", got)
	}
	if got := e.CoveredCells(st2); got != 26 {
		t.Errorf("T̂(2) covered cells = %d, want 26", got)
	}
	if got := e.CoveredCells(st3); got != 24 {
		t.Errorf("T̂(3) covered cells = %d, want 24", got)
	}

	if got := e.CellCoverage(st1); math.Abs(got-28.0/36.0) > 1e-12 {
		t.Errorf("T̂(1) coverage = %v", got)
	}
	if got := Diversity(b, st1); math.Abs(got-(1-(0.25+0+0.25)/3)) > 1e-12 {
		t.Errorf("T̂(1) diversity = %v, want 0.8333", got)
	}
	if got := Diversity(b, st3); math.Abs(got-(1-0.25/3)) > 1e-12 {
		t.Errorf("T̂(3) diversity = %v, want 0.9167", got)
	}

	c1 := e.Combined(st1)
	c3 := e.Combined(st3)
	if math.Abs(c1-0.8056) > 0.001 {
		t.Errorf("T̂(1) combined = %v, want ≈0.80", c1)
	}
	if math.Abs(c3-0.7917) > 0.001 {
		t.Errorf("T̂(3) combined = %v, want ≈0.79", c3)
	}
	if c1 <= c3 {
		t.Errorf("paper: T̂(1) (%v) should beat T̂(3) (%v)", c1, c3)
	}
}

func TestCoveredRules(t *testing.T) {
	b, rs := paperExample(t)
	e := NewEvaluator(b, rs, 0.5)
	st := SubTable{Rows: []int{0, 4, 6}, Cols: colIdx(t, b, "CANCELLED", "DEP_TIME", "YEAR", "DISTANCE")}
	idx := e.CoveredRules(st)
	if len(idx) == 0 {
		t.Fatal("expected covered rules")
	}
	for _, i := range idx {
		r := rs[i]
		// All rule columns selected.
		inCols := map[int]bool{}
		for _, c := range st.Cols {
			inCols[c] = true
		}
		for _, c := range r.Cols {
			if !inCols[c] {
				t.Fatalf("covered rule %d uses unselected column %d", i, c)
			}
		}
		// Some selected row satisfies it.
		ok := false
		for _, row := range st.Rows {
			if r.Tuples.Contains(row) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("covered rule %d has no satisfying selected row", i)
		}
	}
}

func TestEmptyRuleSet(t *testing.T) {
	b, _ := paperExample(t)
	e := NewEvaluator(b, nil, 0.5)
	st := SubTable{Rows: []int{0, 1}, Cols: []int{0, 1}}
	if e.Upcov() != 0 {
		t.Fatal("upcov of empty rule set should be 0")
	}
	if e.CellCoverage(st) != 0 {
		t.Fatal("coverage with no rules should be 0")
	}
	// Combined degrades to diversity-only.
	if got, want := e.Combined(st), 0.5*Diversity(b, st); math.Abs(got-want) > 1e-12 {
		t.Fatalf("combined = %v, want %v", got, want)
	}
}

func TestDiversityBounds(t *testing.T) {
	b, _ := paperExample(t)
	// Identical rows: diversity 0.
	st := SubTable{Rows: []int{0, 0, 0}, Cols: []int{0, 1, 2}}
	if got := Diversity(b, st); got != 0 {
		t.Fatalf("identical-row diversity = %v", got)
	}
	// Single row: 1.
	if got := Diversity(b, SubTable{Rows: []int{3}, Cols: []int{0}}); got != 1 {
		t.Fatalf("single-row diversity = %v", got)
	}
	// No rows: 1.
	if got := Diversity(b, SubTable{Cols: []int{0}}); got != 1 {
		t.Fatalf("empty diversity = %v", got)
	}
}

func TestJaccard(t *testing.T) {
	b, _ := paperExample(t)
	cols := []int{0, 1, 2, 3, 4}
	// Rows 1,2 (paper): CANC=1, DEP=NaN, YEAR=2015 match; SCHED matches
	// (afternoon); DISTANCE differs => 4/5.
	if got := Jaccard(b, 0, 1, cols); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Jaccard(0,1) = %v", got)
	}
	// Reflexive.
	if got := Jaccard(b, 3, 3, cols); got != 1 {
		t.Fatalf("Jaccard(x,x) = %v", got)
	}
	// Symmetric.
	if Jaccard(b, 0, 5, cols) != Jaccard(b, 5, 0, cols) {
		t.Fatal("Jaccard must be symmetric")
	}
	// Empty columns.
	if got := Jaccard(b, 0, 1, nil); got != 0 {
		t.Fatalf("Jaccard over no columns = %v", got)
	}
}

func TestMissingValuesCountAsSimilar(t *testing.T) {
	b, _ := paperExample(t)
	// Rows 1 and 2 both have DEP_TIME = NaN: same missing bin.
	dep := []int{b.T.ColumnIndex("DEP_TIME")}
	if got := Jaccard(b, 0, 1, dep); got != 1 {
		t.Fatalf("NaN-NaN similarity = %v, want 1", got)
	}
	// Row 1 (NaN) vs row 5 (morning): different.
	if got := Jaccard(b, 0, 4, dep); got != 0 {
		t.Fatalf("NaN-value similarity = %v, want 0", got)
	}
}

// Property: coverage is monotone in rows — adding a row never decreases it.
func TestPropCoverageMonotoneInRows(t *testing.T) {
	b, rs := paperExample(t)
	e := NewEvaluator(b, rs, 0.5)
	cols := []int{0, 1, 2, 3, 4}
	f := func(rawRows []uint8, extra uint8) bool {
		rows := []int{}
		for _, r := range rawRows {
			rows = append(rows, int(r)%8)
		}
		base := e.CoveredCells(SubTable{Rows: rows, Cols: cols})
		more := e.CoveredCells(SubTable{Rows: append(rows, int(extra)%8), Cols: cols})
		return more >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: coverage is submodular in rows — the marginal gain of a new row
// shrinks as the base set grows (the fact behind Prop. 4.3).
func TestPropCoverageSubmodularInRows(t *testing.T) {
	b, rs := paperExample(t)
	e := NewEvaluator(b, rs, 0.5)
	cols := []int{0, 1, 2, 3, 4}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		// A ⊆ B, x ∉ B.
		var a, bset []int
		for r := 0; r < 8; r++ {
			switch rng.Intn(3) {
			case 0:
				a = append(a, r)
				bset = append(bset, r)
			case 1:
				bset = append(bset, r)
			}
		}
		x := rng.Intn(8)
		inB := false
		for _, r := range bset {
			if r == x {
				inB = true
			}
		}
		if inB {
			continue
		}
		gainA := e.CoveredCells(SubTable{Rows: append(append([]int{}, a...), x), Cols: cols}) -
			e.CoveredCells(SubTable{Rows: a, Cols: cols})
		gainB := e.CoveredCells(SubTable{Rows: append(append([]int{}, bset...), x), Cols: cols}) -
			e.CoveredCells(SubTable{Rows: bset, Cols: cols})
		if gainA < gainB {
			t.Fatalf("submodularity violated: A=%v B=%v x=%d gains %d < %d", a, bset, x, gainA, gainB)
		}
	}
}

// Property: all metrics stay within [0, 1].
func TestPropMetricBounds(t *testing.T) {
	b, rs := paperExample(t)
	e := NewEvaluator(b, rs, 0.5)
	f := func(rawRows, rawCols []uint8) bool {
		rows := []int{}
		for _, r := range rawRows {
			rows = append(rows, int(r)%8)
		}
		colSet := map[int]bool{}
		for _, c := range rawCols {
			colSet[int(c)%5] = true
		}
		cols := []int{}
		for c := range colSet {
			cols = append(cols, c)
		}
		st := SubTable{Rows: rows, Cols: cols}
		cov := e.CellCoverage(st)
		div := Diversity(b, st)
		comb := e.Combined(st)
		return cov >= 0 && cov <= 1 && div >= 0 && div <= 1 && comb >= 0 && comb <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Full table as sub-table covers everything coverable.
func TestFullTableCoversUpcov(t *testing.T) {
	b, rs := paperExample(t)
	e := NewEvaluator(b, rs, 0.5)
	st := SubTable{Rows: []int{0, 1, 2, 3, 4, 5, 6, 7}, Cols: []int{0, 1, 2, 3, 4}}
	if got := e.CoveredCells(st); got != e.Upcov() {
		t.Fatalf("full table covers %d, upcov %d", got, e.Upcov())
	}
	if got := e.CellCoverage(st); got != 1 {
		t.Fatalf("full-table coverage = %v", got)
	}
}

func TestEvaluatorClone(t *testing.T) {
	b, rs := paperExample(t)
	e := NewEvaluator(b, rs, 0.5)
	c := e.Clone()
	st := SubTable{Rows: []int{0, 4, 6}, Cols: []int{0, 1, 2, 4}}
	if e.Combined(st) != c.Combined(st) {
		t.Fatal("clone must score identically")
	}
	if c.Upcov() != e.Upcov() {
		t.Fatal("clone upcov mismatch")
	}
}

// The miner's rules plug into the evaluator (integration smoke).
func TestMinedRulesIntegration(t *testing.T) {
	b, _ := paperExample(t)
	mined, err := rules.Mine(b, rules.Options{MinSupport: 0.25, MinConfidence: 0.5, MinRuleSize: 3, MaxItemsetSize: 4, TargetCols: []string{"CANCELLED"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("expected mined rules")
	}
	e := NewEvaluator(b, mined, 0.5)
	if e.Upcov() == 0 {
		t.Fatal("upcov should be positive")
	}
	st := SubTable{Rows: []int{0, 4, 6}, Cols: []int{0, 1, 2, 4}}
	if got := e.Combined(st); got <= 0 || got > 1 {
		t.Fatalf("combined = %v", got)
	}
}
