package table

import (
	"math"
	"testing"
)

func joinFixture(t *testing.T) (*Table, *Table) {
	t.Helper()
	flights := New("flights")
	if err := flights.AddColumn(NewCategorical("AIRLINE", []string{"AA", "B6", "AA", "ZZ", ""})); err != nil {
		t.Fatal(err)
	}
	if err := flights.AddColumn(NewNumeric("DISTANCE", []float64{100, 200, 300, 400, 500})); err != nil {
		t.Fatal(err)
	}
	carriers := New("carriers")
	if err := carriers.AddColumn(NewCategorical("AIRLINE", []string{"AA", "B6", "DL"})); err != nil {
		t.Fatal(err)
	}
	if err := carriers.AddColumn(NewCategorical("NAME", []string{"American", "JetBlue", "Delta"})); err != nil {
		t.Fatal(err)
	}
	return flights, carriers
}

func TestEquiJoinBasic(t *testing.T) {
	flights, carriers := joinFixture(t)
	res, err := EquiJoin(flights, carriers, "AIRLINE", "AIRLINE", "r_")
	if err != nil {
		t.Fatal(err)
	}
	// AA matches rows 0 and 2, B6 matches row 1; ZZ and missing do not.
	if res.T.NumRows() != 3 {
		t.Fatalf("joined rows = %d, want 3", res.T.NumRows())
	}
	// Collision on AIRLINE gets prefixed.
	if res.T.Column("r_AIRLINE") == nil {
		t.Fatalf("prefixed column missing: %v", res.T.ColumnNames())
	}
	if res.T.Column("NAME") == nil {
		t.Fatal("right-only column missing")
	}
	// Provenance is consistent.
	for i := range res.LeftRows {
		la := flights.Cell(res.LeftRows[i], "AIRLINE").Str
		ra := carriers.Cell(res.RightRows[i], "AIRLINE").Str
		if la != ra {
			t.Fatalf("row %d: join key mismatch %q vs %q", i, la, ra)
		}
		if got := res.T.Cell(i, "AIRLINE").Str; got != la {
			t.Fatalf("row %d: output key %q, want %q", i, got, la)
		}
	}
	// Values carried over correctly.
	for i := 0; i < res.T.NumRows(); i++ {
		if res.T.Cell(i, "AIRLINE").Str == "B6" && res.T.Cell(i, "NAME").Str != "JetBlue" {
			t.Fatalf("B6 joined to %q", res.T.Cell(i, "NAME").Str)
		}
	}
}

func TestEquiJoinNumericKey(t *testing.T) {
	a := New("a")
	if err := a.AddColumn(NewNumeric("id", []float64{1, 2, 3, math.NaN()})); err != nil {
		t.Fatal(err)
	}
	b := New("b")
	if err := b.AddColumn(NewNumeric("id", []float64{2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := b.AddColumn(NewNumeric("v", []float64{20, 30, 40})); err != nil {
		t.Fatal(err)
	}
	res, err := EquiJoin(a, b, "id", "id", "r_")
	if err != nil {
		t.Fatal(err)
	}
	if res.T.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (NaN keys never match)", res.T.NumRows())
	}
}

func TestEquiJoinManyToMany(t *testing.T) {
	a := New("a")
	if err := a.AddColumn(NewCategorical("k", []string{"x", "x"})); err != nil {
		t.Fatal(err)
	}
	b := New("b")
	if err := b.AddColumn(NewCategorical("k", []string{"x", "x", "x"})); err != nil {
		t.Fatal(err)
	}
	res, err := EquiJoin(a, b, "k", "k", "r_")
	if err != nil {
		t.Fatal(err)
	}
	if res.T.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6 (2x3 cross per key)", res.T.NumRows())
	}
}

func TestEquiJoinErrors(t *testing.T) {
	flights, carriers := joinFixture(t)
	if _, err := EquiJoin(flights, carriers, "nope", "AIRLINE", "r_"); err == nil {
		t.Fatal("unknown left column should error")
	}
	if _, err := EquiJoin(flights, carriers, "AIRLINE", "nope", "r_"); err == nil {
		t.Fatal("unknown right column should error")
	}
	if _, err := EquiJoin(flights, carriers, "DISTANCE", "AIRLINE", "r_"); err == nil {
		t.Fatal("kind mismatch should error")
	}
}
