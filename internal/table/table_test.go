package table

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// sample builds a small mixed table used across tests.
func sample(t *testing.T) *Table {
	t.Helper()
	tab := New("flights")
	if err := tab.AddColumn(NewNumeric("DISTANCE", []float64{100, 2000, math.NaN(), 550})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(NewCategorical("AIRLINE", []string{"AA", "B6", "AA", ""})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(NewNumeric("CANCELLED", []float64{0, 0, 1, 0})); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDims(t *testing.T) {
	tab := sample(t)
	if tab.NumRows() != 4 || tab.NumCols() != 3 {
		t.Fatalf("dims = %dx%d, want 4x3", tab.NumRows(), tab.NumCols())
	}
}

func TestEmptyTable(t *testing.T) {
	tab := New("empty")
	if tab.NumRows() != 0 || tab.NumCols() != 0 {
		t.Fatal("empty table should be 0x0")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	tab := New("t")
	if err := tab.AddColumn(NewNumeric("a", []float64{1})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(NewNumeric("a", []float64{2})); err == nil {
		t.Fatal("duplicate column name should be rejected")
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	tab := New("t")
	if err := tab.AddColumn(NewNumeric("a", []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(NewNumeric("b", []float64{1})); err == nil {
		t.Fatal("length mismatch should be rejected")
	}
}

func TestColumnLookup(t *testing.T) {
	tab := sample(t)
	if tab.Column("AIRLINE") == nil {
		t.Fatal("AIRLINE should exist")
	}
	if tab.Column("nope") != nil {
		t.Fatal("unknown column should be nil")
	}
	if tab.ColumnIndex("CANCELLED") != 2 {
		t.Fatalf("ColumnIndex(CANCELLED) = %d", tab.ColumnIndex("CANCELLED"))
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Fatal("unknown column index should be -1")
	}
}

func TestCellValues(t *testing.T) {
	tab := sample(t)
	v := tab.Cell(1, "DISTANCE")
	if v.Missing || v.Num != 2000 {
		t.Fatalf("Cell(1,DISTANCE) = %+v", v)
	}
	v = tab.Cell(2, "DISTANCE")
	if !v.Missing {
		t.Fatal("NaN cell should be missing")
	}
	v = tab.Cell(0, "AIRLINE")
	if v.Missing || v.Str != "AA" {
		t.Fatalf("Cell(0,AIRLINE) = %+v", v)
	}
	v = tab.Cell(3, "AIRLINE")
	if !v.Missing {
		t.Fatal("empty categorical should be missing")
	}
	v = tab.Cell(0, "nope")
	if !v.Missing {
		t.Fatal("unknown column cell should be missing")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{Missing: true}, "NaN"},
		{Value{Kind: Numeric, Num: 3}, "3"},
		{Value{Kind: Numeric, Num: 3.5}, "3.5"},
		{Value{Kind: Categorical, Str: "x"}, "x"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Value%v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestProject(t *testing.T) {
	tab := sample(t)
	p, err := tab.Project([]string{"CANCELLED", "AIRLINE"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.ColumnNames()[0] != "CANCELLED" {
		t.Fatalf("projection = %v", p.ColumnNames())
	}
	if p.NumRows() != 4 {
		t.Fatal("projection must preserve rows")
	}
	if _, err := tab.Project([]string{"nope"}); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestSelectRows(t *testing.T) {
	tab := sample(t)
	s := tab.SelectRows([]int{2, 0, 0})
	if s.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", s.NumRows())
	}
	if !s.Cell(0, "DISTANCE").Missing {
		t.Fatal("row 0 should be original row 2 (missing distance)")
	}
	if s.Cell(1, "AIRLINE").Str != "AA" || s.Cell(2, "AIRLINE").Str != "AA" {
		t.Fatal("rows 1,2 should be original row 0")
	}
}

func TestSubTableView(t *testing.T) {
	tab := sample(t)
	st, err := tab.SubTableView([]int{1, 3}, []string{"AIRLINE", "CANCELLED"})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 2 || st.NumCols() != 2 {
		t.Fatalf("sub-table dims = %dx%d", st.NumRows(), st.NumCols())
	}
	if st.Cell(0, "AIRLINE").Str != "B6" {
		t.Fatalf("sub-table cell = %v", st.Cell(0, "AIRLINE"))
	}
}

func TestHead(t *testing.T) {
	tab := sample(t)
	h := tab.Head(2)
	if h.NumRows() != 2 {
		t.Fatalf("Head(2) rows = %d", h.NumRows())
	}
	h = tab.Head(100)
	if h.NumRows() != 4 {
		t.Fatalf("Head(100) rows = %d", h.NumRows())
	}
}

func TestCloneIndependent(t *testing.T) {
	tab := sample(t)
	c := tab.Clone()
	c.Column("DISTANCE").Nums[0] = 999
	if tab.Column("DISTANCE").Nums[0] == 999 {
		t.Fatal("clone must not share numeric data")
	}
}

func TestSortIndices(t *testing.T) {
	tab := sample(t)
	asc, err := tab.SortIndices("DISTANCE", true)
	if err != nil {
		t.Fatal(err)
	}
	// 100, 550, 2000, NaN-last.
	want := []int{0, 3, 1, 2}
	for i := range want {
		if asc[i] != want[i] {
			t.Fatalf("asc = %v, want %v", asc, want)
		}
	}
	desc, _ := tab.SortIndices("DISTANCE", false)
	want = []int{1, 3, 0, 2} // NaN still last
	for i := range want {
		if desc[i] != want[i] {
			t.Fatalf("desc = %v, want %v", desc, want)
		}
	}
	if _, err := tab.SortIndices("nope", true); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestSortCategorical(t *testing.T) {
	tab := sample(t)
	asc, err := tab.SortIndices("AIRLINE", true)
	if err != nil {
		t.Fatal(err)
	}
	// AA, AA, B6, missing-last; stable keeps 0 before 2.
	want := []int{0, 2, 1, 3}
	for i := range want {
		if asc[i] != want[i] {
			t.Fatalf("asc = %v, want %v", asc, want)
		}
	}
}

func TestMissingCountDistinct(t *testing.T) {
	tab := sample(t)
	if got := tab.Column("DISTANCE").MissingCount(); got != 1 {
		t.Fatalf("MissingCount = %d", got)
	}
	if got := tab.Column("DISTANCE").Distinct(); got != 3 {
		t.Fatalf("Distinct = %d", got)
	}
	if got := tab.Column("AIRLINE").Distinct(); got != 2 {
		t.Fatalf("Distinct = %d", got)
	}
}

func TestRenderHighlight(t *testing.T) {
	tab := sample(t)
	out := tab.Render(func(r, ci int) bool { return r == 0 && ci == 0 })
	if !strings.Contains(out, "[100]") {
		t.Fatalf("highlight missing in:\n%s", out)
	}
	if !strings.Contains(out, "DISTANCE") || !strings.Contains(out, "NaN") {
		t.Fatalf("render missing header or NaN:\n%s", out)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Code("x")
	b := d.Code("y")
	if a == b {
		t.Fatal("distinct strings must get distinct codes")
	}
	if c := d.Code("x"); c != a {
		t.Fatal("re-interning must return the same code")
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if s := d.String(a); s != "x" {
		t.Fatalf("String(%d) = %q", a, s)
	}
	if _, ok := d.Lookup("z"); ok {
		t.Fatal("Lookup of unknown string should fail")
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind should render with number")
	}
}

// Property: SelectRows of all indices is identity on values.
func TestPropSelectAllIdentity(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		tab := New("t")
		if err := tab.AddColumn(NewNumeric("a", vals)); err != nil {
			return false
		}
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		s := tab.SelectRows(idx)
		for i, v := range vals {
			got := s.Column("a").Nums[i]
			if math.IsNaN(v) != math.IsNaN(got) {
				return false
			}
			if !math.IsNaN(v) && got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Project is order-preserving and idempotent.
func TestPropProjectIdempotent(t *testing.T) {
	tab := sample(t)
	names := []string{"AIRLINE", "DISTANCE"}
	p1, err := tab.Project(names)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p1.Project(names)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range p2.ColumnNames() {
		if n != names[i] {
			t.Fatalf("names = %v", p2.ColumnNames())
		}
	}
}
