package table

import (
	"math"
	"testing"
)

func TestAppendRowsBasic(t *testing.T) {
	base := sample(t) // 4 rows: DISTANCE, AIRLINE, CANCELLED
	add := New("delta")
	if err := add.AddColumn(NewNumeric("DISTANCE", []float64{700, math.NaN()})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewCategorical("AIRLINE", []string{"DL", "AA"})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewNumeric("CANCELLED", []float64{1, 0})); err != nil {
		t.Fatal(err)
	}
	out, err := base.AppendRows(add)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6 || out.NumCols() != 3 {
		t.Fatalf("dims = %dx%d, want 6x3", out.NumRows(), out.NumCols())
	}
	if got := out.Cell(4, "DISTANCE"); got.Num != 700 {
		t.Fatalf("appended DISTANCE = %v, want 700", got)
	}
	if got := out.Cell(5, "DISTANCE"); !got.Missing {
		t.Fatalf("appended NaN DISTANCE = %v, want missing", got)
	}
	// New category DL interned after the existing ones; old strings reuse
	// their codes.
	if got := out.Cell(4, "AIRLINE"); got.Str != "DL" {
		t.Fatalf("appended AIRLINE = %v, want DL", got)
	}
	if got := out.Cell(5, "AIRLINE"); got.Str != "AA" {
		t.Fatalf("appended AIRLINE = %v, want AA", got)
	}
	ac := out.Column("AIRLINE")
	if ac.Cats[5] != base.Column("AIRLINE").Cats[0] {
		t.Fatalf("existing category re-interned with a new code: %d vs %d",
			ac.Cats[5], base.Column("AIRLINE").Cats[0])
	}
}

func TestAppendRowsDoesNotMutateReceiver(t *testing.T) {
	base := sample(t)
	beforeRows := base.NumRows()
	beforeDict := base.Column("AIRLINE").Dict.Size()
	add := New("delta")
	if err := add.AddColumn(NewNumeric("DISTANCE", []float64{1})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewCategorical("AIRLINE", []string{"ZZ"})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewNumeric("CANCELLED", []float64{0})); err != nil {
		t.Fatal(err)
	}
	out, err := base.AppendRows(add)
	if err != nil {
		t.Fatal(err)
	}
	if base.NumRows() != beforeRows {
		t.Fatalf("receiver grew to %d rows", base.NumRows())
	}
	if base.Column("AIRLINE").Dict.Size() != beforeDict {
		t.Fatalf("receiver dictionary grew to %d", base.Column("AIRLINE").Dict.Size())
	}
	if out.Column("AIRLINE").Dict == base.Column("AIRLINE").Dict {
		t.Fatal("result shares the receiver's dictionary")
	}
	if out.Column("AIRLINE").Dict.Size() != beforeDict+1 {
		t.Fatalf("result dictionary has %d entries, want %d", out.Column("AIRLINE").Dict.Size(), beforeDict+1)
	}
}

func TestAppendRowsMatchesByName(t *testing.T) {
	base := sample(t)
	// Columns in a different order still land in the right place.
	add := New("delta")
	if err := add.AddColumn(NewNumeric("CANCELLED", []float64{1})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewCategorical("AIRLINE", []string{"B6"})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewNumeric("DISTANCE", []float64{42})); err != nil {
		t.Fatal(err)
	}
	out, err := base.AppendRows(add)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Cell(4, "DISTANCE"); got.Num != 42 {
		t.Fatalf("DISTANCE = %v, want 42", got)
	}
	if got := out.Cell(4, "CANCELLED"); got.Num != 1 {
		t.Fatalf("CANCELLED = %v, want 1", got)
	}
}

func TestAppendRowsAllMissingColumnMatchesEitherKind(t *testing.T) {
	base := sample(t)
	// A CSV chunk whose DISTANCE cells are all empty infers Categorical;
	// the append must still accept it as missing numeric values.
	add := New("delta")
	if err := add.AddColumn(NewCategorical("DISTANCE", []string{"", ""})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewCategorical("AIRLINE", []string{"AA", "AA"})); err != nil {
		t.Fatal(err)
	}
	if err := add.AddColumn(NewNumeric("CANCELLED", []float64{0, 1})); err != nil {
		t.Fatal(err)
	}
	out, err := base.AppendRows(add)
	if err != nil {
		t.Fatal(err)
	}
	for r := 4; r < 6; r++ {
		if !out.Column("DISTANCE").Missing(r) {
			t.Fatalf("row %d DISTANCE not missing", r)
		}
	}
}

func TestAppendRowsErrors(t *testing.T) {
	base := sample(t)
	missingCol := New("delta")
	if err := missingCol.AddColumn(NewNumeric("DISTANCE", []float64{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := base.AppendRows(missingCol); err == nil {
		t.Fatal("append with missing columns succeeded")
	}

	wrongName := New("delta")
	for _, c := range []*Column{
		NewNumeric("DISTANCE", []float64{1}),
		NewCategorical("CARRIER", []string{"AA"}),
		NewNumeric("CANCELLED", []float64{0}),
	} {
		if err := wrongName.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := base.AppendRows(wrongName); err == nil {
		t.Fatal("append with unknown column name succeeded")
	}

	wrongKind := New("delta")
	for _, c := range []*Column{
		NewCategorical("DISTANCE", []string{"far"}),
		NewCategorical("AIRLINE", []string{"AA"}),
		NewNumeric("CANCELLED", []float64{0}),
	} {
		if err := wrongKind.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := base.AppendRows(wrongKind); err == nil {
		t.Fatal("append with non-missing kind mismatch succeeded")
	}
}

func TestAppendRowsEmptyDelta(t *testing.T) {
	base := sample(t)
	add := New("delta")
	for _, c := range []*Column{
		NewNumeric("DISTANCE", nil),
		NewCategorical("AIRLINE", nil),
		NewNumeric("CANCELLED", nil),
	} {
		if err := add.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	out, err := base.AppendRows(add)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != base.NumRows() {
		t.Fatalf("rows = %d, want %d", out.NumRows(), base.NumRows())
	}
}
