// Package table implements the relational-table substrate that SubTab
// operates on: typed, column-major tables with first-class missing values,
// CSV input/output, projections, row selections and plain-text rendering.
//
// It plays the role Pandas plays in the paper's implementation: tables are
// loaded once, queried with selection/projection/group-by/sort (see package
// query), and rendered as small textual sub-tables.
package table

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind is the type of a column.
type Kind int

const (
	// Numeric columns store float64 values; math.NaN() marks a missing cell.
	Numeric Kind = iota
	// Categorical columns store dictionary-encoded strings; code -1 marks a
	// missing cell.
	Categorical
)

// String returns "numeric" or "categorical".
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dict is an order-preserving string dictionary for categorical columns.
type Dict struct {
	strs []string
	idx  map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{idx: make(map[string]int32)}
}

// Code returns the code for s, interning it if necessary.
func (d *Dict) Code(s string) int32 {
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := int32(len(d.strs))
	d.strs = append(d.strs, s)
	d.idx[s] = c
	return c
}

// Lookup returns the code for s and whether it is present.
func (d *Dict) Lookup(s string) (int32, bool) {
	c, ok := d.idx[s]
	return c, ok
}

// String returns the string for code c; it panics on out-of-range codes.
func (d *Dict) String(c int32) string { return d.strs[c] }

// Size returns the number of distinct strings.
func (d *Dict) Size() int { return len(d.strs) }

// Strings returns a copy of the interned strings in code order (code i is
// out[i]) — the payload of a serialized dictionary page.
func (d *Dict) Strings() []string {
	out := make([]string, len(d.strs))
	copy(out, d.strs)
	return out
}

// DictFromStrings rebuilds a dictionary from a dictionary page's strings:
// string i gets code i, exactly reversing Strings.
func DictFromStrings(strs []string) *Dict {
	d := NewDict()
	for _, s := range strs {
		d.Code(s)
	}
	return d
}

// clone deep-copies the dictionary. Appends extend the clone, never the
// original, so readers of the source table are unaffected.
func (d *Dict) clone() *Dict {
	out := &Dict{strs: make([]string, len(d.strs)), idx: make(map[string]int32, len(d.strs))}
	copy(out.strs, d.strs)
	for i, s := range out.strs {
		out.idx[s] = int32(i)
	}
	return out
}

// Column is a single typed column. Exactly one of Nums/Cats is populated
// depending on Kind.
type Column struct {
	Name string
	Kind Kind
	Nums []float64 // Kind == Numeric; NaN marks missing
	Cats []int32   // Kind == Categorical; -1 marks missing
	Dict *Dict     // Kind == Categorical
}

// NewNumeric returns a numeric column wrapping vals (not copied).
func NewNumeric(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: Numeric, Nums: vals}
}

// NewCategorical returns a categorical column from raw string values; empty
// strings are stored as missing.
func NewCategorical(name string, vals []string) *Column {
	d := NewDict()
	codes := make([]int32, len(vals))
	for i, v := range vals {
		if v == "" {
			codes[i] = -1
			continue
		}
		codes[i] = d.Code(v)
	}
	return &Column{Name: name, Kind: Categorical, Cats: codes, Dict: d}
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.Kind == Numeric {
		return len(c.Nums)
	}
	return len(c.Cats)
}

// Missing reports whether the cell at row r is missing.
func (c *Column) Missing(r int) bool {
	if c.Kind == Numeric {
		return math.IsNaN(c.Nums[r])
	}
	return c.Cats[r] < 0
}

// MissingCount returns the number of missing cells.
func (c *Column) MissingCount() int {
	n := 0
	for r := 0; r < c.Len(); r++ {
		if c.Missing(r) {
			n++
		}
	}
	return n
}

// CellString renders the cell at row r ("NaN" for missing).
func (c *Column) CellString(r int) string {
	if c.Missing(r) {
		return "NaN"
	}
	if c.Kind == Numeric {
		return FormatNum(c.Nums[r])
	}
	return c.Dict.String(c.Cats[r])
}

// FormatNum renders a non-missing numeric cell — the exact bytes CellString
// and Value.String produce. It is exported so out-of-table cell renderers
// (the paged column store) stay byte-identical to in-memory rendering.
func FormatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

// Distinct returns the number of distinct non-missing values.
func (c *Column) Distinct() int {
	if c.Kind == Categorical {
		seen := make(map[int32]struct{})
		for _, v := range c.Cats {
			if v >= 0 {
				seen[v] = struct{}{}
			}
		}
		return len(seen)
	}
	seen := make(map[float64]struct{})
	for _, v := range c.Nums {
		if !math.IsNaN(v) {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// gather returns a new column with the rows at the given indices, sharing the
// dictionary with the source column.
func (c *Column) gather(rows []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind, Dict: c.Dict}
	if c.Kind == Numeric {
		out.Nums = make([]float64, len(rows))
		for i, r := range rows {
			out.Nums[i] = c.Nums[r]
		}
	} else {
		out.Cats = make([]int32, len(rows))
		for i, r := range rows {
			out.Cats[i] = c.Cats[r]
		}
	}
	return out
}

// Value is a dynamically typed cell value.
type Value struct {
	Missing bool
	Kind    Kind
	Num     float64
	Str     string
}

// String renders the value ("NaN" for missing).
func (v Value) String() string {
	if v.Missing {
		return "NaN"
	}
	if v.Kind == Numeric {
		return FormatNum(v.Num)
	}
	return v.Str
}

// Table is a finite relation: an ordered set of equal-length typed columns.
//
// A table can be *paged*: its cell payloads dropped (DropCells) because
// they live in an external column store, leaving a schema husk that still
// reports its row count and column names/kinds. Operations that touch cell
// data panic on a paged table; callers gate on CellsResident and read
// through a CellSource instead.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]int

	paged     bool
	pagedRows int // row count while the cell payloads are dropped
}

// New returns an empty table with the given name.
func New(name string) *Table {
	return &Table{Name: name, byName: make(map[string]int)}
}

// FromColumns builds a table from pre-built columns. All columns must have
// equal length and distinct names.
func FromColumns(name string, cols []*Column) (*Table, error) {
	t := New(name)
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AddColumn appends a column. It errors on duplicate names or length
// mismatches with existing columns.
func (t *Table) AddColumn(c *Column) error {
	if _, dup := t.byName[c.Name]; dup {
		return fmt.Errorf("table %s: duplicate column %q", t.Name, c.Name)
	}
	if len(t.cols) > 0 && c.Len() != t.NumRows() {
		return fmt.Errorf("table %s: column %q has %d rows, table has %d",
			t.Name, c.Name, c.Len(), t.NumRows())
	}
	t.byName[c.Name] = len(t.cols)
	t.cols = append(t.cols, c)
	return nil
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int {
	if t.paged {
		return t.pagedRows
	}
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// DropCells releases every column's cell payload (values and
// dictionaries), leaving a schema-only table in paged mode: NumRows and the
// column names/kinds keep answering, cell reads panic. Used once the cells
// live in an external column store.
func (t *Table) DropCells() {
	if t.paged {
		return
	}
	t.pagedRows = t.NumRows()
	t.paged = true
	for _, c := range t.cols {
		c.Nums, c.Cats, c.Dict = nil, nil, nil
	}
}

// CellsResident reports whether the cell payloads are in memory (false =
// paged mode; reads must go through a CellSource).
func (t *Table) CellsResident() bool { return !t.paged }

// ApproxBytes estimates the heap bytes of the table's resident cell
// payloads: numeric values, categorical codes, and dictionary strings
// (string header + bytes, interned once per distinct value; the reverse
// index is counted at the same cost as the forward slice). Zero for a
// paged table. The estimate feeds the serving layer's byte-weighted
// accounting, so it aims at proportionality, not malloc-exact truth.
func (t *Table) ApproxBytes() int64 {
	if t.paged {
		return 0
	}
	var b int64
	for _, c := range t.cols {
		b += int64(len(c.Nums)) * 8
		b += int64(len(c.Cats)) * 4
		if c.Dict != nil {
			for _, s := range c.Dict.strs {
				b += 2 * (16 + int64(len(s))) // forward slice + reverse map
			}
		}
	}
	return b
}

// MarkPaged puts a schema-only table (columns with empty payloads, as
// deserialized from a paged model file) into paged mode with the given row
// count.
func (t *Table) MarkPaged(rows int) {
	t.paged = true
	t.pagedRows = rows
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the columns in order. The slice must not be mutated.
func (t *Table) Columns() []*Column { return t.cols }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// Column returns the column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnAt returns the column at position i.
func (t *Table) ColumnAt(i int) *Column { return t.cols[i] }

// Cell returns the value at row r of the named column.
func (t *Table) Cell(r int, name string) Value {
	c := t.Column(name)
	if c == nil {
		return Value{Missing: true}
	}
	return t.CellAt(r, t.byName[name])
}

// CellAt returns the value at row r, column index ci.
func (t *Table) CellAt(r, ci int) Value {
	c := t.cols[ci]
	if c.Missing(r) {
		return Value{Missing: true, Kind: c.Kind}
	}
	if c.Kind == Numeric {
		return Value{Kind: Numeric, Num: c.Nums[r]}
	}
	return Value{Kind: Categorical, Str: c.Dict.String(c.Cats[r])}
}

// Project returns a new table with only the named columns, in the given
// order. Unknown names produce an error. Column data is shared, not copied.
func (t *Table) Project(names []string) (*Table, error) {
	out := New(t.Name)
	for _, name := range names {
		i, ok := t.byName[name]
		if !ok {
			return nil, fmt.Errorf("table %s: unknown column %q", t.Name, name)
		}
		if err := out.AddColumn(t.cols[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SelectRows returns a new table containing the rows at the given indices,
// in order (indices may repeat). It panics on out-of-range indices.
func (t *Table) SelectRows(rows []int) *Table {
	out := New(t.Name)
	for _, c := range t.cols {
		// AddColumn cannot fail here: names are unique and lengths equal.
		_ = out.AddColumn(c.gather(rows))
	}
	return out
}

// AppendRows returns a new table holding t's rows followed by src's rows.
// The receiver is NOT mutated: every column (and every categorical
// dictionary) of the result is freshly allocated, so selections running
// against t — or against a model wrapping t — are unaffected while an append
// is in flight. This is the substrate of the streaming ingestion path
// (core.Model.Append).
//
// Columns are matched by name: src must have exactly t's column set (any
// order). Kinds must agree, except that an all-missing src column matches
// either kind — a CSV chunk whose cells are all empty cannot infer its type.
// New categorical strings are interned into the result's (cloned)
// dictionaries in row order, exactly where a fresh CSV read of the
// concatenated data would put them.
func (t *Table) AppendRows(src *Table) (*Table, error) {
	if src.NumCols() != t.NumCols() {
		return nil, fmt.Errorf("table %s: appending %d columns to %d", t.Name, src.NumCols(), t.NumCols())
	}
	oldN, addN := t.NumRows(), src.NumRows()
	out := New(t.Name)
	for _, c := range t.cols {
		sc := src.Column(c.Name)
		if sc == nil {
			return nil, fmt.Errorf("table %s: appended rows lack column %q", t.Name, c.Name)
		}
		if sc.Kind != c.Kind && sc.MissingCount() != sc.Len() {
			return nil, fmt.Errorf("table %s: column %q is %v, appended rows have %v",
				t.Name, c.Name, c.Kind, sc.Kind)
		}
		nc := &Column{Name: c.Name, Kind: c.Kind}
		if c.Kind == Numeric {
			nc.Nums = make([]float64, oldN+addN)
			copy(nc.Nums, c.Nums)
			for r := 0; r < addN; r++ {
				if sc.Missing(r) {
					nc.Nums[oldN+r] = math.NaN()
				} else {
					nc.Nums[oldN+r] = sc.Nums[r]
				}
			}
		} else {
			if c.Dict != nil {
				nc.Dict = c.Dict.clone()
			} else {
				nc.Dict = NewDict()
			}
			nc.Cats = make([]int32, oldN+addN)
			copy(nc.Cats, c.Cats)
			for r := 0; r < addN; r++ {
				if sc.Missing(r) {
					nc.Cats[oldN+r] = -1
				} else {
					nc.Cats[oldN+r] = nc.Dict.Code(sc.Dict.String(sc.Cats[r]))
				}
			}
		}
		if err := out.AddColumn(nc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SubTableView returns the k×l table given by row indices and column names.
func (t *Table) SubTableView(rows []int, cols []string) (*Table, error) {
	p, err := t.Project(cols)
	if err != nil {
		return nil, err
	}
	return p.SelectRows(rows), nil
}

// Head returns the first n rows (Pandas-style default display).
func (t *Table) Head(n int) *Table {
	if n > t.NumRows() {
		n = t.NumRows()
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return t.SelectRows(rows)
}

// Clone deep-copies the table (dictionaries are shared; they are append-only).
func (t *Table) Clone() *Table {
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	return t.SelectRows(rows)
}

// SortIndices returns row indices ordered by the named column (missing last).
func (t *Table) SortIndices(name string, ascending bool) ([]int, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("table %s: unknown column %q", t.Name, name)
	}
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	less := func(i, j int) bool {
		a, b := idx[i], idx[j]
		ma, mb := c.Missing(a), c.Missing(b)
		if ma || mb {
			return !ma && mb // missing sorts last regardless of direction
		}
		if c.Kind == Numeric {
			if ascending {
				return c.Nums[a] < c.Nums[b]
			}
			return c.Nums[a] > c.Nums[b]
		}
		sa, sb := c.Dict.String(c.Cats[a]), c.Dict.String(c.Cats[b])
		if ascending {
			return sa < sb
		}
		return sa > sb
	}
	sort.SliceStable(idx, less)
	return idx, nil
}

// String renders the table as an aligned plain-text grid.
func (t *Table) String() string { return t.Render(nil) }

// Render renders the table; highlight, if non-nil, maps (row, colIndex) cells
// to be wrapped in [ ] markers (used to highlight association rules, as the
// paper's UI does with colors).
func (t *Table) Render(highlight func(r, ci int) bool) string {
	n, m := t.NumRows(), t.NumCols()
	widths := make([]int, m)
	cells := make([][]string, n+1)
	cells[0] = make([]string, m)
	for ci, c := range t.cols {
		cells[0][ci] = c.Name
		widths[ci] = len(c.Name)
	}
	for r := 0; r < n; r++ {
		cells[r+1] = make([]string, m)
		for ci := range t.cols {
			s := t.cols[ci].CellString(r)
			if highlight != nil && highlight(r, ci) {
				s = "[" + s + "]"
			}
			cells[r+1][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for ri, row := range cells {
		for ci, s := range row {
			if ci > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[ci], s)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for ci, w := range widths {
				if ci > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
