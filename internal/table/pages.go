package table

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Column pages are the fixed-width on-disk encoding of a run of cells from
// one column — the unit the paged column store (internal/colstore) blocks,
// checksums and mmaps. Numeric cells are the 8 raw bytes of their float64
// (NaN round-trips bit-exactly, so missing markers survive); categorical
// cells are their dictionary code as a u32 (missing code -1 becomes
// 0xFFFFFFFF). Dictionary pages carry a categorical column's interned
// strings in code order. Everything is little-endian, matching the
// codestore conventions.

// PageCellWidth returns the fixed byte width of one cell in a column page.
func PageCellWidth(k Kind) int {
	if k == Numeric {
		return 8
	}
	return 4
}

// AppendPage appends the page encoding of rows [start, start+n) of the
// column to dst and returns the extended slice.
func (c *Column) AppendPage(dst []byte, start, n int) []byte {
	if c.Kind == Numeric {
		for _, v := range c.Nums[start : start+n] {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst
	}
	for _, code := range c.Cats[start : start+n] {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(code))
	}
	return dst
}

// DecodeNumericPage decodes a numeric page into dst (grown as needed).
func DecodeNumericPage(page []byte, dst []float64) []float64 {
	n := len(page) / 8
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[i*8:]))
	}
	return dst
}

// DecodeCategoricalPage decodes a categorical page into dst (grown as
// needed).
func DecodeCategoricalPage(page []byte, dst []int32) []int32 {
	n := len(page) / 4
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(page[i*4:]))
	}
	return dst
}

// AppendDictPage appends a dictionary page — u32 count, then per string a
// u32 length and the bytes — to dst and returns the extended slice.
func AppendDictPage(dst []byte, strs []string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(strs)))
	for _, s := range strs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeDictPage decodes a dictionary page from the front of buf, returning
// the strings and the number of bytes consumed.
func DecodeDictPage(buf []byte) ([]string, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("table: dictionary page shorter than its count")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	// A count the remaining bytes cannot possibly hold is structural damage,
	// not an allocation request.
	if n < 0 || n > (len(buf)-off)/4 {
		return nil, 0, fmt.Errorf("table: dictionary page claims %d strings in %d bytes", n, len(buf)-off)
	}
	strs := make([]string, n)
	for i := range strs {
		if len(buf)-off < 4 {
			return nil, 0, fmt.Errorf("table: dictionary page truncated at string %d", i)
		}
		l := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if l < 0 || l > len(buf)-off {
			return nil, 0, fmt.Errorf("table: dictionary string %d claims %d bytes, %d remain", i, l, len(buf)-off)
		}
		strs[i] = string(buf[off : off+l])
		off += l
	}
	return strs, off, nil
}
