package table

import "fmt"

// CellSource provides rendered cells for a table whose raw columns are not
// resident in memory — the display-side analogue of binning.CodeSource. A
// selection is a k×l view over the source table; with a CellSource attached
// the view is assembled by gathering exactly those k rows' cells out of the
// paged column store (or, on a sharded coordinator, over the wire) instead
// of indexing an in-memory Table.
//
// GatherCells must return, for each requested row, the exact bytes
// Column.CellString would produce on the resident column: "NaN" for missing
// cells, FormatNum for numeric values, the dictionary string for
// categorical codes. That contract is what keeps paged selections
// byte-identical to in-memory ones.
type CellSource interface {
	// NumRows returns the source table's row count.
	NumRows() int
	// NumCols returns the source table's column count.
	NumCols() int
	// ColumnName returns the name of column c.
	ColumnName(c int) string
	// GatherCells returns the rendered cells of column c at the given rows,
	// in order (rows may repeat). Implementations may not retain rows.
	GatherCells(c int, rows []int) ([]string, error)
}

// ViewFromCells assembles a rendered k×l view table from per-column cell
// strings (colCells[j][i] is row i of column j). Every cell string is
// interned verbatim into a per-column dictionary, so the resulting table
// Renders the exact bytes it was given — including "NaN" cells, which stay
// literal strings rather than missing markers.
func ViewFromCells(name string, colNames []string, colCells [][]string) (*Table, error) {
	if len(colNames) != len(colCells) {
		return nil, fmt.Errorf("table %s: %d column names for %d cell columns", name, len(colNames), len(colCells))
	}
	out := New(name)
	for j, cells := range colCells {
		d := NewDict()
		codes := make([]int32, len(cells))
		for i, s := range cells {
			codes[i] = d.Code(s)
		}
		col := &Column{Name: colNames[j], Kind: Categorical, Cats: codes, Dict: d}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ViewCellGatherer is the optional batch extension of CellSource: sources
// whose per-column gathers each pay a round trip (a sharded coordinator
// fetching over the wire) implement it to serve all of a view's columns in
// one call. GatherView prefers it when present.
type ViewCellGatherer interface {
	// GatherViewCells returns cells[col][row] for the requested columns and
	// rows, each column's cells under the GatherCells contract.
	GatherViewCells(cols []int, rows []int) ([][]string, error)
}

// GatherView builds the k×l view SubTableView would produce over the
// resident table, reading the cells through src instead. cols are source
// column indices; the view's columns appear in the given order under the
// source's column names.
func GatherView(src CellSource, name string, rows []int, cols []int) (*Table, error) {
	names := make([]string, len(cols))
	for j, c := range cols {
		if c < 0 || c >= src.NumCols() {
			return nil, fmt.Errorf("table %s: cell source has no column %d", name, c)
		}
		names[j] = src.ColumnName(c)
	}
	if g, ok := src.(ViewCellGatherer); ok {
		colCells, err := g.GatherViewCells(cols, rows)
		if err != nil {
			return nil, fmt.Errorf("table %s: gathering view cells: %w", name, err)
		}
		return ViewFromCells(name, names, colCells)
	}
	colCells := make([][]string, len(cols))
	for j, c := range cols {
		cells, err := src.GatherCells(c, rows)
		if err != nil {
			return nil, fmt.Errorf("table %s: gathering column %q: %w", name, names[j], err)
		}
		colCells[j] = cells
	}
	return ViewFromCells(name, names, colCells)
}
