package table

import (
	"fmt"
	"math"
)

// JoinResult is an equi-join output with provenance: for every output row,
// the source row in each input table.
type JoinResult struct {
	T         *Table
	LeftRows  []int
	RightRows []int
}

// EquiJoin computes the inner equi-join of left and right on the given
// columns (hash join; the right side is built into the hash table). Columns
// of the right table whose names collide with left-table columns are
// prefixed with rightPrefix. Missing join keys never match. This is the
// multi-table substrate for the paper's §7 future-work direction of
// sub-tables over joins: join first, then Preprocess the result.
func EquiJoin(left, right *Table, leftCol, rightCol, rightPrefix string) (*JoinResult, error) {
	lc := left.Column(leftCol)
	if lc == nil {
		return nil, fmt.Errorf("table: join: unknown left column %q", leftCol)
	}
	rc := right.Column(rightCol)
	if rc == nil {
		return nil, fmt.Errorf("table: join: unknown right column %q", rightCol)
	}
	if lc.Kind != rc.Kind {
		return nil, fmt.Errorf("table: join: column kinds differ (%s vs %s)", lc.Kind, rc.Kind)
	}

	// Build: key -> right row indices.
	build := make(map[string][]int)
	for r := 0; r < right.NumRows(); r++ {
		if rc.Missing(r) {
			continue
		}
		build[joinKey(rc, r)] = append(build[joinKey(rc, r)], r)
	}
	// Probe.
	var leftRows, rightRows []int
	for r := 0; r < left.NumRows(); r++ {
		if lc.Missing(r) {
			continue
		}
		for _, rr := range build[joinKey(lc, r)] {
			leftRows = append(leftRows, r)
			rightRows = append(rightRows, rr)
		}
	}

	out := New(left.Name + "_join_" + right.Name)
	lt := left.SelectRows(leftRows)
	for _, c := range lt.Columns() {
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	rt := right.SelectRows(rightRows)
	for _, c := range rt.Columns() {
		name := c.Name
		if out.Column(name) != nil {
			name = rightPrefix + name
		}
		cc := *c
		cc.Name = name
		if err := out.AddColumn(&cc); err != nil {
			return nil, err
		}
	}
	return &JoinResult{T: out, LeftRows: leftRows, RightRows: rightRows}, nil
}

func joinKey(c *Column, r int) string {
	if c.Kind == Numeric {
		v := c.Nums[r]
		if v == math.Trunc(v) {
			return fmt.Sprintf("n%d", int64(v))
		}
		return fmt.Sprintf("f%g", v)
	}
	return "s" + c.Dict.String(c.Cats[r])
}
