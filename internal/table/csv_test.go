package table

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `DISTANCE,AIRLINE,CANCELLED
100,AA,0
2000,B6,0
NaN,AA,1
550,,0
`

func TestReadCSVTypes(t *testing.T) {
	tab, err := ReadCSV("flights", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 || tab.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Column("DISTANCE").Kind != Numeric {
		t.Fatal("DISTANCE should infer Numeric")
	}
	if tab.Column("AIRLINE").Kind != Categorical {
		t.Fatal("AIRLINE should infer Categorical")
	}
	if !math.IsNaN(tab.Column("DISTANCE").Nums[2]) {
		t.Fatal("NaN token should parse as missing")
	}
	if !tab.Column("AIRLINE").Missing(3) {
		t.Fatal("empty categorical cell should be missing")
	}
}

func TestReadCSVMissingSpellings(t *testing.T) {
	csv := "a,b\nNA,x\nnull,y\nNone,z\nN/A,w\n1.5,v\n"
	tab, err := ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("a").Kind != Numeric {
		t.Fatal("a should be numeric despite missing spellings")
	}
	if got := tab.Column("a").MissingCount(); got != 4 {
		t.Fatalf("missing = %d, want 4", got)
	}
}

func TestReadCSVAllMissingColumn(t *testing.T) {
	csv := "a\nNA\nNA\n"
	tab, err := ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	c := tab.Column("a")
	if c.Kind != Categorical {
		t.Fatal("all-missing column defaults to categorical")
	}
	if c.MissingCount() != 2 {
		t.Fatalf("missing = %d", c.MissingCount())
	}
}

func TestReadCSVRaggedRow(t *testing.T) {
	csv := "a,b\n1,2\n3\n"
	if _, err := ReadCSV("t", strings.NewReader(csv)); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Fatal("missing header should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := ReadCSV("flights", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("flights", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatalf("round-trip dims %dx%d", back.NumRows(), back.NumCols())
	}
	for r := 0; r < tab.NumRows(); r++ {
		for ci := 0; ci < tab.NumCols(); ci++ {
			a, b := tab.CellAt(r, ci), back.CellAt(r, ci)
			if a.Missing != b.Missing || a.String() != b.String() {
				t.Fatalf("cell (%d,%d): %v vs %v", r, ci, a, b)
			}
		}
	}
}

func TestReadWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "mini" {
		t.Fatalf("table name = %q, want mini", tab.Name)
	}
	out := filepath.Join(dir, "out.csv")
	if err := tab.WriteCSVFile(out); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Fatal("file round-trip row mismatch")
	}
}

func TestReadCSVFileMissing(t *testing.T) {
	if _, err := ReadCSVFile("/nonexistent/x.csv"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestReadCSVLike(t *testing.T) {
	schema, err := ReadCSV("s", strings.NewReader("amount,model\n1,A320\n2,737\n"))
	if err != nil {
		t.Fatal(err)
	}
	if schema.Column("model").Kind != Categorical {
		t.Fatal("setup: model must infer categorical")
	}
	// A chunk whose categorical values all look numeric stays categorical.
	chunk, err := ReadCSVLike("s", strings.NewReader("amount,model\n7,737\n8,747\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Column("model").Kind != Categorical {
		t.Fatalf("chunk model inferred %v, want categorical", chunk.Column("model").Kind)
	}
	if got := chunk.Cell(0, "model"); got.Str != "737" {
		t.Fatalf("model cell = %v, want 737", got)
	}
	// Missing tokens work for both kinds.
	miss, err := ReadCSVLike("s", strings.NewReader("amount,model\nNA,NULL\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if !miss.Column("amount").Missing(0) || !miss.Column("model").Missing(0) {
		t.Fatal("missing tokens not honored")
	}
	// Letters in a schema-numeric column error with the column named.
	if _, err := ReadCSVLike("s", strings.NewReader("amount,model\nlots,737\n"), schema); err == nil || !strings.Contains(err.Error(), "amount") {
		t.Fatalf("bad numeric cell error = %v, want named column", err)
	}
	// Columns the schema does not know fall back to inference.
	extra, err := ReadCSVLike("s", strings.NewReader("amount,extra\n1,2\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if extra.Column("extra").Kind != Numeric {
		t.Fatal("unknown column did not fall back to inference")
	}
}
