package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// missingTokens are CSV cell spellings treated as missing values.
var missingTokens = map[string]bool{
	"": true, "NA": true, "N/A": true, "NaN": true, "nan": true,
	"null": true, "NULL": true, "None": true,
}

// ReadCSV parses a CSV stream with a header row into a table, inferring a
// Kind per column: a column is Numeric if every non-missing cell parses as a
// float, otherwise Categorical. The name is attached to the table.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	header, raw, err := readCSVRaw(r)
	if err != nil {
		return nil, err
	}
	t := New(name)
	for i, colName := range header {
		if err := t.AddColumn(inferColumn(colName, raw[i])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile reads a CSV file; the table name is the file path's base name
// without extension.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return ReadCSV(name, f)
}

// ReadCSVLike parses a CSV stream with a header row, typing each column by
// the like-named column of schema instead of inferring from the cells —
// the right reader for an append chunk, where per-chunk inference can
// misjudge (a categorical column whose chunk values all happen to parse as
// numbers, a numeric column whose chunk cells are all missing). Columns
// absent from schema fall back to inference, so schema mismatches surface
// downstream with their usual errors; a non-numeric cell in a
// schema-numeric column is an error here, naming the column and value.
func ReadCSVLike(name string, r io.Reader, schema *Table) (*Table, error) {
	header, raw, err := readCSVRaw(r)
	if err != nil {
		return nil, err
	}
	t := New(name)
	for i, colName := range header {
		var col *Column
		sc := schema.Column(colName)
		switch {
		case sc == nil:
			col = inferColumn(colName, raw[i])
		case sc.Kind == Numeric:
			vals, err := numericCells(colName, raw[i])
			if err != nil {
				return nil, err
			}
			col = NewNumeric(colName, vals)
		default:
			col = NewCategorical(colName, categoricalCells(raw[i]))
		}
		if err := t.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// readCSVRaw reads the header and the per-column raw cells.
func readCSVRaw(r io.Reader) ([]string, [][]string, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}
	raw := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("table: reading CSV row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, nil, fmt.Errorf("table: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		for i, cell := range rec {
			raw[i] = append(raw[i], strings.TrimSpace(cell))
		}
	}
	return header, raw, nil
}

// numericCells converts raw cells to float64s (missing tokens become NaN);
// a cell that parses as neither is an error naming the column — the single
// definition of the missing/numeric cell policy, shared by inference and
// schema-typed parsing.
func numericCells(name string, cells []string) ([]float64, error) {
	vals := make([]float64, len(cells))
	for i, c := range cells {
		if missingTokens[c] {
			vals[i] = math.NaN()
			continue
		}
		v, err := strconv.ParseFloat(c, 64)
		if err != nil {
			return nil, fmt.Errorf("table: column %q row %d: %q is not numeric", name, i+1, c)
		}
		vals[i] = v
	}
	return vals, nil
}

// categoricalCells normalizes raw cells for NewCategorical (missing tokens
// become "", its missing sentinel).
func categoricalCells(cells []string) []string {
	vals := make([]string, len(cells))
	for i, c := range cells {
		if missingTokens[c] {
			continue
		}
		vals[i] = c
	}
	return vals
}

// inferColumn decides Numeric vs Categorical and builds the column.
func inferColumn(name string, cells []string) *Column {
	numeric := true
	nonMissing := 0
	for _, c := range cells {
		if missingTokens[c] {
			continue
		}
		nonMissing++
		if _, err := strconv.ParseFloat(c, 64); err != nil {
			numeric = false
			break
		}
	}
	if nonMissing == 0 {
		numeric = false // all-missing: keep as categorical of nothing
	}
	if numeric {
		vals, err := numericCells(name, cells)
		if err != nil {
			// Unreachable: every non-missing cell just parsed above.
			return NewCategorical(name, categoricalCells(cells))
		}
		return NewNumeric(name, vals)
	}
	return NewCategorical(name, categoricalCells(cells))
}

// WriteCSV writes the table as CSV with a header row; missing cells are
// written as empty fields.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for ci, c := range t.cols {
			if c.Missing(r) {
				rec[ci] = ""
			} else {
				rec[ci] = c.CellString(r)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the given path.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
