package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// missingTokens are CSV cell spellings treated as missing values.
var missingTokens = map[string]bool{
	"": true, "NA": true, "N/A": true, "NaN": true, "nan": true,
	"null": true, "NULL": true, "None": true,
}

// ReadCSV parses a CSV stream with a header row into a table, inferring a
// Kind per column: a column is Numeric if every non-missing cell parses as a
// float, otherwise Categorical. The name is attached to the table.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}
	raw := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("table: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		for i, cell := range rec {
			raw[i] = append(raw[i], strings.TrimSpace(cell))
		}
	}
	t := New(name)
	for i, colName := range header {
		if err := t.AddColumn(inferColumn(colName, raw[i])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile reads a CSV file; the table name is the file path's base name
// without extension.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return ReadCSV(name, f)
}

// inferColumn decides Numeric vs Categorical and builds the column.
func inferColumn(name string, cells []string) *Column {
	numeric := true
	nonMissing := 0
	for _, c := range cells {
		if missingTokens[c] {
			continue
		}
		nonMissing++
		if _, err := strconv.ParseFloat(c, 64); err != nil {
			numeric = false
			break
		}
	}
	if nonMissing == 0 {
		numeric = false // all-missing: keep as categorical of nothing
	}
	if numeric {
		vals := make([]float64, len(cells))
		for i, c := range cells {
			if missingTokens[c] {
				vals[i] = math.NaN()
				continue
			}
			v, _ := strconv.ParseFloat(c, 64)
			vals[i] = v
		}
		return NewNumeric(name, vals)
	}
	vals := make([]string, len(cells))
	for i, c := range cells {
		if missingTokens[c] {
			vals[i] = ""
			continue
		}
		vals[i] = c
	}
	return NewCategorical(name, vals)
}

// WriteCSV writes the table as CSV with a header row; missing cells are
// written as empty fields.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for ci, c := range t.cols {
			if c.Missing(r) {
				rec[ci] = ""
			} else {
				rec[ci] = c.CellString(r)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the given path.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
