package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"subtab/internal/core"
	"subtab/internal/query"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// testTable builds a small mixed table with missing values in both kinds.
func testTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	nums := make([]float64, rows)
	wide := make([]float64, rows)
	cats := make([]string, rows)
	tags := make([]string, rows)
	for i := range nums {
		nums[i] = float64(rng.Intn(40))
		wide[i] = rng.NormFloat64()*10 + float64(rng.Intn(3))*25
		cats[i] = fmt.Sprintf("c%d", rng.Intn(4))
		tags[i] = fmt.Sprintf("t%d", rng.Intn(9)) // forces an "other" bin
		if rng.Intn(11) == 0 {
			cats[i] = "" // missing
		}
	}
	for i := 0; i < rows; i += 13 {
		nums[i] = nan()
	}
	tab, err := table.FromColumns("mixed", []*table.Column{
		table.NewNumeric("num", nums),
		table.NewNumeric("wide", wide),
		table.NewCategorical("cat", cats),
		table.NewCategorical("tag", tags),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func nan() float64 { return float64(0) / zero }

var zero float64 // foils constant folding of 0/0

func testModel(t *testing.T) *core.Model {
	t.Helper()
	opt := core.Default()
	opt.Embedding = word2vec.Options{Dim: 16, Epochs: 2, Seed: 3}
	opt.ClusterSeed = 5
	m, err := core.Preprocess(testTable(t, 400), opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func saveBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripSelections is the property test of the persistence contract:
// a loaded model produces byte-identical Select and SelectQuery output to
// the model that was saved, without re-running pre-processing.
func TestRoundTripSelections(t *testing.T) {
	m := testModel(t)
	loaded, err := Load(bytes.NewReader(saveBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}

	type sel struct {
		k, l    int
		targets []string
	}
	cases := []sel{{4, 2, nil}, {6, 3, nil}, {8, 4, []string{"cat"}}, {3, 4, []string{"num", "tag"}}}
	for _, c := range cases {
		want, err := m.Select(c.k, c.l, c.targets)
		if err != nil {
			t.Fatalf("Select(%d,%d,%v): %v", c.k, c.l, c.targets, err)
		}
		got, err := loaded.Select(c.k, c.l, c.targets)
		if err != nil {
			t.Fatalf("loaded Select(%d,%d,%v): %v", c.k, c.l, c.targets, err)
		}
		if !reflect.DeepEqual(want.SourceRows, got.SourceRows) || !reflect.DeepEqual(want.Cols, got.Cols) {
			t.Fatalf("Select(%d,%d,%v) diverged after reload:\nsaved  rows %v cols %v\nloaded rows %v cols %v",
				c.k, c.l, c.targets, want.SourceRows, want.Cols, got.SourceRows, got.Cols)
		}
		if want.View.String() != got.View.String() {
			t.Fatalf("Select(%d,%d,%v) view diverged after reload", c.k, c.l, c.targets)
		}
	}

	queries := []*query.Query{
		{Where: []query.Predicate{{Col: "num", Op: query.Geq, Num: 10}}},
		{Where: []query.Predicate{{Col: "cat", Op: query.Eq, Str: "c1"}}},
		{GroupBy: []string{"cat"}, Aggs: []query.Aggregate{{Func: query.Count}}},
		{OrderBy: "wide", Limit: 100},
	}
	for i, q := range queries {
		want, err := m.SelectQuery(q, 5, 3, nil)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		got, err := loaded.SelectQuery(q, 5, 3, nil)
		if err != nil {
			t.Fatalf("query %d on loaded model: %v", i, err)
		}
		if want.View.String() != got.View.String() {
			t.Fatalf("query %d view diverged after reload:\nsaved:\n%sloaded:\n%s", i, want.View, got.View)
		}
	}
}

// TestRoundTripInternals checks that the derived state Select depends on is
// restored exactly, not recomputed approximately.
func TestRoundTripInternals(t *testing.T) {
	m := testModel(t)
	loaded, err := Load(bytes.NewReader(saveBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Opt, loaded.Opt) {
		t.Fatalf("options diverged:\nsaved  %+v\nloaded %+v", m.Opt, loaded.Opt)
	}
	if !reflect.DeepEqual(m.AffinityMatrix(), loaded.AffinityMatrix()) {
		t.Fatal("column-affinity matrix diverged after reload")
	}
	for c := 0; c < m.T.NumCols(); c++ {
		if !reflect.DeepEqual(m.B.Codes[c], loaded.B.Codes[c]) {
			t.Fatalf("bin codes of column %d diverged", c)
		}
	}
	for item := 0; item < m.B.NumItems(); item++ {
		if !reflect.DeepEqual(m.ItemVector(int32(item)), loaded.ItemVector(int32(item))) {
			t.Fatalf("item vector %d diverged", item)
		}
	}
	// A second save must be byte-identical (the codec is deterministic).
	if !bytes.Equal(saveBytes(t, m), saveBytes(t, loaded)) {
		t.Fatal("save → load → save is not byte-identical")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := testModel(t)
	path := filepath.Join(t.TempDir(), "model.subtab")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.T.NumRows() != m.T.NumRows() || loaded.T.NumCols() != m.T.NumCols() {
		t.Fatalf("loaded table is %dx%d, want %dx%d",
			loaded.T.NumRows(), loaded.T.NumCols(), m.T.NumRows(), m.T.NumCols())
	}
}

func TestLoadBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTAMODELFILE...."))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Load(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty input: err = %v, want ErrBadMagic", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	m := testModel(t)
	data := saveBytes(t, m)
	binary.LittleEndian.PutUint16(data[8:], Version+1)
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	data := saveBytes(t, testModel(t))
	for _, n := range []int{9, 16, 64, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

// TestLoadBitFlips flips bytes throughout the file and asserts every flip is
// rejected — structurally where decoding notices, by the CRC-32C otherwise.
func TestLoadBitFlips(t *testing.T) {
	data := saveBytes(t, testModel(t))
	stride := 131
	if testing.Short() {
		stride = 977
	}
	for pos := 10; pos < len(data); pos += stride {
		corrupt := bytes.Clone(data)
		corrupt[pos] ^= 0x40
		if _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("flip at byte %d of %d loaded without error", pos, len(data))
		}
	}
}

func TestLoadTrailingGarbageChecksum(t *testing.T) {
	data := saveBytes(t, testModel(t))
	data[len(data)-1] ^= 0xff // corrupt the checksum itself
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
