package modelio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"subtab/internal/core"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// fuzzModelBytes builds a small but fully featured model file: numeric and
// categorical columns, missing values, an "other" bin, a trained embedding
// — every section of the format is non-trivial.
func fuzzModelBytes(tb testing.TB) []byte {
	tb.Helper()
	nums := make([]float64, 60)
	cats := make([]string, 60)
	for i := range nums {
		nums[i] = float64(i % 9)
		cats[i] = []string{"a", "b", "c", "d", "e", "f", "g"}[i%7]
	}
	nums[5] = nan()
	cats[11] = ""
	tab, err := table.FromColumns("fz", []*table.Column{
		table.NewNumeric("num", nums),
		table.NewCategorical("cat", cats),
	})
	if err != nil {
		tb.Fatal(err)
	}
	opt := core.Default()
	opt.Bins.MaxBins = 4
	opt.Embedding = word2vec.Options{Dim: 8, Epochs: 1, Seed: 1}
	m, err := core.Preprocess(tab, opt)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad drives Load with corrupted model files: whatever the bytes,
// Load must return a model or an error — never panic, never hang, never
// allocate unboundedly off a poisoned length field. Seeds cover the
// adversarial classes the codec is documented to reject: truncations at
// section boundaries, bit flips (caught by the CRC), version skew, and an
// empty/garbage stream. The checked-in corpus under testdata/fuzz/FuzzLoad
// replays known-interesting inputs on every plain `go test` run.
func FuzzLoad(f *testing.F) {
	valid := fuzzModelBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SUBTABMD"))
	f.Add([]byte("not a model file at all"))
	// Truncations: header, early sections, just before the checksum.
	for _, n := range []int{4, 9, 16, 64, len(valid) / 2, len(valid) - 5, len(valid) - 1} {
		if n >= 0 && n < len(valid) {
			f.Add(valid[:n])
		}
	}
	// Bit flips sprinkled through every section.
	for pos := 0; pos < len(valid); pos += len(valid)/16 + 1 {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x40
		f.Add(flipped)
	}
	// Version skew: future and zero versions in an otherwise valid file.
	for _, v := range []uint16{0, Version + 1, 999} {
		skewed := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint16(skewed[8:10], v)
		f.Add(skewed)
	}
	// Poisoned length field right after the header (row count).
	poisoned := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(poisoned[10:14], 0xFFFFFFF0)
	f.Add(poisoned)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatal("Load returned both a model and an error")
			}
			return
		}
		// Anything Load accepts must be internally consistent enough to
		// serialize again and to answer the cheap structural queries the
		// serving layer makes.
		if m.T == nil || m.B == nil || m.Emb == nil {
			t.Fatal("Load accepted an incomplete model")
		}
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("accepted model does not re-save: %v", err)
		}
	})
}
