package modelio

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"subtab/internal/core"
	"subtab/internal/word2vec"
)

// shardedModel builds a model, splits its codes into three shard files
// under dir and returns it shard-backed.
func shardedModel(t *testing.T, dir string) *core.Model {
	t.Helper()
	opt := core.Default()
	opt.Embedding = word2vec.Options{Dim: 16, Epochs: 2, Seed: 3}
	opt.ClusterSeed = 5
	opt.Scale = core.ScaleOptions{Threshold: 1, SampleBudget: 150, BatchSize: 64, MaxIter: 40}
	m, err := core.Preprocess(testTable(t, 400), opt)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("mixed.codes.%03d", i))
	}
	// 61 rows/block: 400 rows split three ways is block-unaligned everywhere.
	if _, err := m.UseShardedStores(paths, 61); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardedRoundTrip pins the v6 contract: a sharded model saves as a
// shard map, reloads against its directory, and selects byte-identically
// — both the exact path and the scaled scatter/gather path.
func TestShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := shardedModel(t, dir)
	path := filepath.Join(dir, "mixed.subtab")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := loaded.ShardSource()
	if src == nil {
		t.Fatal("loaded model is not shard-backed")
	}
	if !src.Complete() || src.NumShards() != 3 {
		t.Fatalf("loaded source: complete=%v shards=%d", src.Complete(), src.NumShards())
	}
	for _, c := range []struct {
		k, l    int
		targets []string
	}{{4, 2, nil}, {8, 4, []string{"cat"}}} {
		want, err := m.Select(c.k, c.l, c.targets)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Select(c.k, c.l, c.targets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.SourceRows, got.SourceRows) || !reflect.DeepEqual(want.Cols, got.Cols) {
			t.Fatalf("Select(%d,%d,%v) diverged after sharded reload", c.k, c.l, c.targets)
		}
		if want.View.String() != got.View.String() {
			t.Fatalf("Select(%d,%d,%v) view diverged after sharded reload", c.k, c.l, c.targets)
		}
	}
}

// TestShardedLoadValidation: a missing shard file fails a normal load,
// loads as a partial coordinator model with AllowMissingShards (which then
// refuses to select without a sampler), and a corrupted shard file fails
// either way.
func TestShardedLoadValidation(t *testing.T) {
	dir := t.TempDir()
	m := shardedModel(t, dir)
	path := filepath.Join(dir, "mixed.subtab")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, "mixed.codes.001")
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile succeeded with a missing shard file")
	}
	loaded, err := LoadFileWith(path, LoadOptions{AllowMissingShards: true})
	if err != nil {
		t.Fatalf("LoadFileWith(AllowMissingShards): %v", err)
	}
	src := loaded.ShardSource()
	if src == nil || src.Complete() {
		t.Fatal("partial load should yield an incomplete shard source")
	}
	if src.ShardAvailable(1) || !src.ShardAvailable(0) || !src.ShardAvailable(2) {
		t.Fatal("wrong shard availability after partial load")
	}
	if _, err := loaded.Select(4, 2, nil); err == nil || !strings.Contains(err.Error(), "sampler") {
		t.Fatalf("partial model Select = %v, want a no-sampler error", err)
	}

	// Corruption: write garbage over the shard file — the map's checksum
	// must reject it even with AllowMissingShards (missing != damaged).
	if err := os.WriteFile(victim, []byte("not a code store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFileWith(path, LoadOptions{AllowMissingShards: true}); err == nil {
		t.Fatal("load accepted a corrupted shard file")
	}
}

// TestShardedResave: a loaded sharded model round-trips again — the shard
// map survives a second save/load cycle unchanged.
func TestShardedResave(t *testing.T) {
	dir := t.TempDir()
	m := shardedModel(t, dir)
	path := filepath.Join(dir, "mixed.subtab")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, "again.subtab")
	if err := SaveFile(path2, loaded); err != nil {
		t.Fatal(err)
	}
	again, err := LoadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.ShardSource().Map(), m.ShardSource().Map()) {
		t.Fatal("shard map changed across save/load cycles")
	}
}
