// Package modelio persists pre-processed SubTab models. The whole point of
// the paper's two-phase design is that the expensive pre-processing phase
// (bin → corpus → Word2Vec) is paid once while every display is interactive;
// serializing the model extends "once" across process restarts and lets a
// serving layer (package serve) keep warm models on disk.
//
// The format is a versioned little-endian binary codec:
//
//	"SUBTABMD" magic · uint16 version · options · table · binned
//	representation · embedding matrices · column-affinity matrix ·
//	bin counts + append lineage (v3+) · CRC-32C
//
// Everything Select/SelectQuery needs is round-tripped — including the item
// vectors and the precomputed column-affinity matrix — so a loaded model
// skips binning, training and the affinity computation entirely and produces
// byte-identical selections (same seeds) to the model that was saved.
//
// The trailing CRC-32C covers every preceding byte; Load rejects truncated
// or bit-flipped files with an error wrapping ErrCorrupt, unknown magics
// with ErrBadMagic, and newer/older format versions with ErrVersion.
package modelio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"subtab/internal/binning"
	"subtab/internal/codestore"
	"subtab/internal/colstore"
	"subtab/internal/core"
	"subtab/internal/shard"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// Version is the current model-file format version. It must be bumped
// whenever the layout of any serialized structure (including the Options
// structs) changes. Version 2 moved the in-memory endpoints of the codec to
// the flat-matrix core (embedding and affinity matrices serialize straight
// from their contiguous backing arrays, with no slice-of-slices staging on
// either side); the byte layout is unchanged from version 1 apart from the
// version field itself. Version 3 appends the cumulative per-column bin
// counts and the appended-since-rebin lineage counter after the affinity
// matrix, so the streaming append path (core.Model.Append) stays
// incremental across a save/load cycle instead of re-scanning the table
// for its drift baseline; files from versions 1 and 2 still load, with the
// counts rebuilt lazily on first use. Version 4 appends the large-table
// scale options (threshold, sample budget, batch size, max iterations) to
// the Options section, so a model saved with the scaled selection mode
// configured keeps it after a load; files from versions 1-3 load with the
// mode disabled (the historical behaviour). Version 5 restructures the
// binned section for out-of-core models: the per-column bin codes — by far
// the largest section of a big table's model — move behind a presence flag
// and may be replaced by a reference to an external code store file
// (package codestore), identified by base name and checksum and resolved
// against the model file's directory at load time; the scale options gain
// the slab spill budget. Files from versions 1-4 still load unchanged.
// Version 6 adds a third codes-section variant for sharded models (flag 2):
// the shard map — per shard, the codestore file's base name, row count,
// block size and identity checksum — resolved against the model file's
// directory at load time. With LoadOptions.AllowMissingShards, shard files
// that do not exist load as a partial source (a coordinator whose shards
// live on peers). Files from versions 1-5 still load unchanged. Version 7
// extends the out-of-core story to the raw columns: the table section gains
// a cells-presence flag (a paged table saves as a schema husk — names,
// kinds and row count only), and a column-store section after the lineage
// counter references the external paged column store (package colstore) —
// a single file, a sharded set cut like the code shards, or none — by base
// name and identity checksum, resolved against the model file's directory
// at load time. Files from versions 1-6 still load unchanged.
const Version uint16 = 7

var magic = [8]byte{'S', 'U', 'B', 'T', 'A', 'B', 'M', 'D'}

// Sentinel errors returned (wrapped) by Load.
var (
	ErrBadMagic = errors.New("modelio: not a subtab model file")
	ErrVersion  = errors.New("modelio: unsupported model file version")
	ErrCorrupt  = errors.New("modelio: corrupt model file")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Save writes m to w in the versioned binary format.
func Save(w io.Writer, m *core.Model) error {
	if m == nil || m.T == nil || m.B == nil || m.Emb == nil {
		return errors.New("modelio: cannot save incomplete model")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	h := crc32.New(crcTable)
	e := &encoder{w: io.MultiWriter(bw, h)}

	e.bytes(magic[:])
	e.u16(Version)
	writeOptions(e, m.Opt)
	writeTable(e, m.T)
	if err := writeBinned(e, m.B); err != nil {
		return err
	}
	writeEmbedding(e, m.Emb)
	writeAffinity(e, m.AffinityData(), m.T.NumCols())
	writeBinCounts(e, m.BinCountsData())
	e.u64(uint64(m.AppendedSinceRebin()))
	if err := writeColumnStore(e, m); err != nil {
		return err
	}
	if e.err != nil {
		return e.err
	}
	// The checksum trails the data it covers, so it is written past the
	// hashing writer.
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], h.Sum32())
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes m to path, creating or truncating the file.
func SaveFile(path string, m *core.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadOptions configures Load for models that reference external state.
type LoadOptions struct {
	// CodeStoreDir is the directory external code-store references (v5
	// models saved out-of-core) and shard maps (v6 sharded models) are
	// resolved against. Empty means external references fail with a
	// descriptive error; LoadFile fills it with the model file's own
	// directory.
	CodeStoreDir string
	// AllowMissingShards loads a sharded model whose shard files are partly
	// absent as a partial source (every present shard still validates
	// against the map). The selection path then requires an installed
	// scatter/gather sampler — this is the coordinator mode of a
	// multi-server sharded table.
	AllowMissingShards bool
}

// Load reads a model previously written by Save. Models that reference an
// external code store need the store's directory — use LoadFile (which
// infers it from the model path) or LoadWith.
func Load(r io.Reader) (*core.Model, error) {
	return LoadWith(r, LoadOptions{})
}

// LoadWith reads a model previously written by Save, resolving external
// code-store references per opt.
func LoadWith(r io.Reader, lopt LoadOptions) (*core.Model, error) {
	h := crc32.New(crcTable)
	d := &decoder{r: bufio.NewReaderSize(r, 1<<16), h: h}

	var gotMagic [8]byte
	d.bytes(gotMagic[:])
	if d.err != nil || gotMagic != magic {
		return nil, ErrBadMagic
	}
	// All prior versions are accepted: v2 only changed the in-memory
	// endpoints of the codec, v3 appended the bin-count section, and v4
	// appended the scale options — so older disk caches keep serving
	// (byte-identical selections included) across upgrades; v1/v2 models
	// rebuild their counts lazily, and pre-v4 models load with the
	// large-table mode disabled.
	v := d.u16()
	if d.err != nil || v < 1 || v > Version {
		if d.err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return nil, fmt.Errorf("%w: file version %d, this build reads versions 1-%d", ErrVersion, v, Version)
	}
	opt := readOptions(d, v)
	t := readTable(d, v)
	cols, codes, ref, smap := readBinnedParts(d, t, v)
	emb := readEmbedding(d)
	aff := readAffinity(d, t)
	var counts [][]int64
	appendedSinceRebin := 0
	if v >= 3 {
		counts = readBinCounts(d, t, cols)
		appendedSinceRebin = int(d.u64())
	}
	var colRef *storeRef
	var colShards []shard.Desc
	if v >= 7 {
		colRef, colShards = readColumnStore(d, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	// Verify the trailing checksum before trusting any of the decoded data
	// structurally beyond what decoding itself validated.
	want := h.Sum32()
	var crc [4]byte
	if _, err := io.ReadFull(d.r, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	// Assemble the binned representation only after the model file itself
	// verified: inline codes restore directly; an external reference opens
	// the code store next to the model and checks its identity checksum; a
	// shard map opens every shard the same way (or, with AllowMissingShards,
	// the shards that are here).
	var b *binning.Binned
	switch {
	case smap != nil:
		if lopt.CodeStoreDir == "" {
			return nil, fmt.Errorf("modelio: model references a %d-shard code store; load with LoadFile or LoadWith{CodeStoreDir}", len(smap.Shards))
		}
		src, err := shard.Open(lopt.CodeStoreDir, smap, t.NumCols(), lopt.AllowMissingShards)
		if err != nil {
			return nil, fmt.Errorf("modelio: opening sharded code store: %w", err)
		}
		b, err = binning.RestoreWithStore(t, cols, src)
		if err != nil {
			src.Close()
			return nil, fmt.Errorf("%w: attaching sharded code store: %v", ErrCorrupt, err)
		}
	case ref == nil:
		var err error
		b, err = binning.Restore(t, cols, codes)
		if err != nil {
			return nil, fmt.Errorf("%w: rebuilding binned representation: %v", ErrCorrupt, err)
		}
	default:
		if lopt.CodeStoreDir == "" {
			return nil, fmt.Errorf("modelio: model references external code store %q; load with LoadFile or LoadWith{CodeStoreDir}", ref.file)
		}
		cs, err := codestore.Open(filepath.Join(lopt.CodeStoreDir, ref.file))
		if err != nil {
			return nil, fmt.Errorf("modelio: opening external code store %q: %w", ref.file, err)
		}
		if cs.Checksum() != ref.checksum {
			cs.Close()
			return nil, fmt.Errorf("%w: external code store %q has checksum %08x, model expects %08x",
				ErrCorrupt, ref.file, cs.Checksum(), ref.checksum)
		}
		b, err = binning.RestoreWithStore(t, cols, cs)
		if err != nil {
			cs.Close()
			return nil, fmt.Errorf("%w: attaching external code store: %v", ErrCorrupt, err)
		}
	}
	m, err := core.Restore(t, b, emb, opt, aff)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if counts != nil {
		if err := m.SeedBinCounts(counts); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if err := m.SetAppendedSinceRebin(appendedSinceRebin); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// External raw columns attach last: the model is structurally whole, so
	// geometry validation runs against the verified schema.
	switch {
	case colShards != nil:
		if lopt.CodeStoreDir == "" {
			return nil, fmt.Errorf("modelio: model references a %d-shard column store; load with LoadFile or LoadWith{CodeStoreDir}", len(colShards))
		}
		names := make([]string, t.NumCols())
		for c := range names {
			names[c] = t.ColumnAt(c).Name
		}
		cells, err := shard.OpenCells(lopt.CodeStoreDir, colShards, names, lopt.AllowMissingShards)
		if err != nil {
			return nil, fmt.Errorf("modelio: opening sharded column store: %w", err)
		}
		if err := m.AttachColumnStore(cells); err != nil {
			cells.Close()
			return nil, fmt.Errorf("%w: attaching sharded column store: %v", ErrCorrupt, err)
		}
	case colRef != nil:
		if lopt.CodeStoreDir == "" {
			return nil, fmt.Errorf("modelio: model references external column store %q; load with LoadFile or LoadWith{CodeStoreDir}", colRef.file)
		}
		cs, err := colstore.Open(filepath.Join(lopt.CodeStoreDir, colRef.file))
		if err != nil {
			return nil, fmt.Errorf("modelio: opening external column store %q: %w", colRef.file, err)
		}
		if cs.Checksum() != colRef.checksum {
			cs.Close()
			return nil, fmt.Errorf("%w: external column store %q has checksum %08x, model expects %08x",
				ErrCorrupt, colRef.file, cs.Checksum(), colRef.checksum)
		}
		if err := m.AttachColumnStore(cs); err != nil {
			cs.Close()
			return nil, fmt.Errorf("%w: attaching external column store: %v", ErrCorrupt, err)
		}
	}
	return m, nil
}

// LoadFile reads a model from path. External code-store references are
// resolved against the model file's directory.
func LoadFile(path string) (*core.Model, error) {
	return LoadFileWith(path, LoadOptions{})
}

// LoadFileWith reads a model from path with explicit load options; an
// empty CodeStoreDir is filled with the model file's own directory.
func LoadFileWith(path string, lopt LoadOptions) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if lopt.CodeStoreDir == "" {
		lopt.CodeStoreDir = filepath.Dir(path)
	}
	return LoadWith(f, lopt)
}

// ---------------------------------------------------------------------------
// Sections

func writeOptions(e *encoder, o core.Options) {
	e.i64(int64(o.Bins.MaxBins))
	e.i64(int64(o.Bins.Strategy))
	e.i64(int64(o.Bins.SampleSize))
	e.i64(int64(o.Bins.GridSize))
	e.i64(o.Bins.Seed)
	e.i64(int64(o.Corpus.MaxSentences))
	e.bool(o.Corpus.TupleSentences)
	e.bool(o.Corpus.ColumnSentences)
	e.i64(o.Corpus.Seed)
	e.i64(int64(o.Embedding.Dim))
	e.i64(int64(o.Embedding.Window))
	e.i64(int64(o.Embedding.Negatives))
	e.i64(int64(o.Embedding.Epochs))
	e.f64(o.Embedding.LearningRate)
	e.i64(o.Embedding.Seed)
	e.i64(int64(o.Embedding.Workers))
	e.i64(int64(o.Columns))
	e.i64(o.ClusterSeed)
	e.i64(int64(o.Scale.Threshold))
	e.i64(int64(o.Scale.SampleBudget))
	e.i64(int64(o.Scale.BatchSize))
	e.i64(int64(o.Scale.MaxIter))
	e.i64(o.Scale.SlabBudgetBytes)
}

func readOptions(d *decoder, v uint16) core.Options {
	var o core.Options
	o.Bins.MaxBins = int(d.i64())
	o.Bins.Strategy = binning.Strategy(d.i64())
	o.Bins.SampleSize = int(d.i64())
	o.Bins.GridSize = int(d.i64())
	o.Bins.Seed = d.i64()
	o.Corpus.MaxSentences = int(d.i64())
	o.Corpus.TupleSentences = d.bool()
	o.Corpus.ColumnSentences = d.bool()
	o.Corpus.Seed = d.i64()
	o.Embedding.Dim = int(d.i64())
	o.Embedding.Window = int(d.i64())
	o.Embedding.Negatives = int(d.i64())
	o.Embedding.Epochs = int(d.i64())
	o.Embedding.LearningRate = d.f64()
	o.Embedding.Seed = d.i64()
	o.Embedding.Workers = int(d.i64())
	o.Columns = core.ColumnStrategy(d.i64())
	o.ClusterSeed = d.i64()
	// The scale section exists from version 4 on; older files predate the
	// large-table mode and load with it disabled.
	if v >= 4 {
		o.Scale.Threshold = int(d.i64())
		o.Scale.SampleBudget = int(d.i64())
		o.Scale.BatchSize = int(d.i64())
		o.Scale.MaxIter = int(d.i64())
	}
	// The slab spill budget exists from version 5 on; older files predate
	// spilling and load with it off (in-memory slabs, the historical mode).
	if v >= 5 {
		o.Scale.SlabBudgetBytes = d.i64()
	}
	return o
}

func writeTable(e *encoder, t *table.Table) {
	e.str(t.Name)
	e.u32(uint32(t.NumRows()))
	e.u32(uint32(t.NumCols()))
	// v7: the cells-presence flag. A paged table (raw columns living in an
	// external column store) saves as a schema husk — per column just name
	// and kind; the dictionaries and payloads are the store's.
	if t.CellsResident() {
		e.u8(1)
	} else {
		e.u8(0)
		for _, c := range t.Columns() {
			e.str(c.Name)
			e.u8(uint8(c.Kind))
		}
		return
	}
	for _, c := range t.Columns() {
		e.str(c.Name)
		e.u8(uint8(c.Kind))
		if c.Kind == table.Numeric {
			e.f64s(c.Nums)
			continue
		}
		dictSize := 0
		if c.Dict != nil {
			dictSize = c.Dict.Size()
		}
		e.u32(uint32(dictSize))
		for code := 0; code < dictSize; code++ {
			e.str(c.Dict.String(int32(code)))
		}
		e.i32s(c.Cats)
	}
}

// maxColumns bounds structure counts that size allocations directly; larger
// values in a file can only come from corruption.
const maxColumns = 1 << 20

func readTable(d *decoder, v uint16) *table.Table {
	name := d.str()
	nRows := int(d.u32())
	nCols := int(d.u32())
	if d.err != nil {
		return nil
	}
	if nCols > maxColumns {
		d.fail("column count %d exceeds limit", nCols)
		return nil
	}
	if v >= 7 {
		switch flag := d.u8(); {
		case d.err != nil:
			return nil
		case flag == 0:
			// Schema husk: the raw columns live in the external column store
			// the trailing column-store section references.
			cols := make([]*table.Column, 0, min(nCols, 4096))
			for i := 0; i < nCols; i++ {
				colName := d.str()
				kind := table.Kind(d.u8())
				if d.err != nil {
					return nil
				}
				if kind != table.Numeric && kind != table.Categorical {
					d.fail("unknown column kind %d", kind)
					return nil
				}
				cols = append(cols, &table.Column{Name: colName, Kind: kind})
			}
			t, err := table.FromColumns(name, cols)
			if err != nil {
				d.fail("rebuilding table: %v", err)
				return nil
			}
			t.MarkPaged(nRows)
			return t
		case flag != 1:
			d.fail("unknown table cells flag %d", flag)
			return nil
		}
	}
	cols := make([]*table.Column, 0, min(nCols, 4096))
	for i := 0; i < nCols; i++ {
		colName := d.str()
		kind := table.Kind(d.u8())
		switch kind {
		case table.Numeric:
			if n := int(d.u32()); d.err == nil && n != nRows {
				d.fail("numeric column %q has %d values, table has %d rows", colName, n, nRows)
				return nil
			}
			nums := d.f64sN(nRows)
			cols = append(cols, table.NewNumeric(colName, nums))
		case table.Categorical:
			dictSize := int(d.u32())
			dict := table.NewDict()
			for code := 0; code < dictSize; code++ {
				s := d.str()
				if d.err != nil {
					return nil
				}
				if dict.Code(s) != int32(code) {
					d.fail("duplicate dictionary string %q", s)
					return nil
				}
			}
			cats := d.i32s(nRows)
			for _, code := range cats {
				if int(code) >= dictSize {
					d.fail("categorical code %d out of dictionary range %d", code, dictSize)
					return nil
				}
			}
			cols = append(cols, &table.Column{Name: colName, Kind: table.Categorical, Cats: cats, Dict: dict})
		default:
			d.fail("unknown column kind %d", kind)
			return nil
		}
		if d.err != nil {
			return nil
		}
	}
	t, err := table.FromColumns(name, cols)
	if err != nil {
		d.fail("rebuilding table: %v", err)
		return nil
	}
	return t
}

// writeBinned serializes the binned representation in the v5 layout:
// per-column metadata first, then one codes section — inline (flag 1, the
// per-column bin codes) or an external code-store reference (flag 0: base
// file name, block size and the store's identity checksum). Store-backed
// models whose source has no file identity cannot be saved as-is.
func writeBinned(e *encoder, b *binning.Binned) error {
	e.u32(uint32(len(b.Cols)))
	for i := range b.Cols {
		cb := &b.Cols[i]
		e.str(cb.Col)
		e.u8(uint8(cb.Kind))
		e.u32(uint32(len(cb.Labels)))
		for _, l := range cb.Labels {
			e.str(l)
		}
		e.f64s(cb.Cuts)
		ints := make([]int32, len(cb.CatToBin))
		for j, v := range cb.CatToBin {
			ints[j] = int32(v)
		}
		e.u32(uint32(len(ints)))
		e.i32s(ints)
		e.i64(int64(cb.MissingBin))
	}
	if b.HasInlineCodes() {
		e.u8(1)
		for i := range b.Cols {
			e.u16s(b.Codes[i])
		}
		return nil
	}
	if src, ok := b.Source().(*shard.Source); ok {
		descs := src.ShardDescs()
		for i, d := range descs {
			if d.File == "" {
				return fmt.Errorf("modelio: sharded model's shard %d has no file identity; only stores opened from a shard map can be saved", i)
			}
		}
		e.u8(2)
		e.u32(uint32(len(descs)))
		for _, d := range descs {
			e.str(d.File)
			e.u64(uint64(d.Rows))
			e.u32(uint32(d.BlockRows))
			e.u32(d.Checksum)
		}
		return nil
	}
	ref, ok := b.Source().(interface {
		Path() string
		Checksum() uint32
		BlockRows() int
	})
	if !ok {
		return errors.New("modelio: model is store-backed but its code source has no file identity; attach a codestore.Store or materialize the codes before saving")
	}
	e.u8(0)
	e.str(filepath.Base(ref.Path()))
	e.u32(uint32(ref.BlockRows()))
	e.u32(ref.Checksum())
	return nil
}

// storeRef is a deserialized external code-store reference.
type storeRef struct {
	file      string
	blockRows int
	checksum  uint32
}

// writeColumnStore serializes the v7 column-store section: one flag — no
// external columns (0, cells travel inline in the table section), a single
// paged column store (1: base file name, block size, identity checksum), or
// a sharded set (2: per-shard descriptors, cut like the code shards).
func writeColumnStore(e *encoder, m *core.Model) error {
	src := m.CellSource()
	if src == nil {
		if !m.T.CellsResident() {
			return errors.New("modelio: table cells are paged but the model has no cell source")
		}
		e.u8(0)
		return nil
	}
	if sc, ok := src.(interface{ ShardDescs() []shard.Desc }); ok {
		descs := sc.ShardDescs()
		for i, d := range descs {
			if d.File == "" {
				return fmt.Errorf("modelio: sharded column store's shard %d has no file identity", i)
			}
		}
		e.u8(2)
		e.u32(uint32(len(descs)))
		for _, d := range descs {
			e.str(d.File)
			e.u64(uint64(d.Rows))
			e.u32(uint32(d.BlockRows))
			e.u32(d.Checksum)
		}
		return nil
	}
	ref, ok := src.(interface {
		Path() string
		Checksum() uint32
		BlockRows() int
	})
	if !ok {
		return errors.New("modelio: model's cell source has no file identity; attach a colstore.Store before saving")
	}
	e.u8(1)
	e.str(filepath.Base(ref.Path()))
	e.u32(uint32(ref.BlockRows()))
	e.u32(ref.Checksum())
	return nil
}

// readColumnStore reads the v7 column-store section, returning exactly one
// of a single-file reference or a sharded descriptor list (both nil when
// the model has no external columns).
func readColumnStore(d *decoder, t *table.Table) (*storeRef, []shard.Desc) {
	if d.err != nil || t == nil {
		return nil, nil
	}
	switch flag := d.u8(); {
	case d.err != nil:
		return nil, nil
	case flag == 0:
		if !t.CellsResident() {
			d.fail("table cells are paged but no column store is referenced")
		}
		return nil, nil
	case flag == 1:
		ref := &storeRef{file: d.str(), blockRows: int(d.u32()), checksum: d.u32()}
		if d.err != nil {
			return nil, nil
		}
		if ref.file == "" || ref.file != filepath.Base(ref.file) {
			d.fail("invalid external column store reference %q", ref.file)
			return nil, nil
		}
		return ref, nil
	case flag == 2:
		n := int(d.u32())
		if d.err != nil {
			return nil, nil
		}
		if n <= 0 || n > 1<<20 {
			d.fail("column store with %d shards", n)
			return nil, nil
		}
		descs := make([]shard.Desc, 0, n)
		total := 0
		for i := 0; i < n; i++ {
			sd := shard.Desc{
				File:      d.str(),
				Rows:      int(d.u64()),
				BlockRows: int(d.u32()),
				Checksum:  d.u32(),
			}
			if d.err != nil {
				return nil, nil
			}
			if sd.File == "" || sd.File != filepath.Base(sd.File) || sd.Rows < 0 || sd.BlockRows <= 0 {
				d.fail("invalid column shard entry %d (%q, %d rows, %d rows/block)", i, sd.File, sd.Rows, sd.BlockRows)
				return nil, nil
			}
			total += sd.Rows
			descs = append(descs, sd)
		}
		if total != t.NumRows() {
			d.fail("column shards hold %d rows, table has %d", total, t.NumRows())
			return nil, nil
		}
		return nil, descs
	default:
		d.fail("unknown column-store flag %d", flag)
		return nil, nil
	}
}

// readBinnedParts reads the binned section: the per-column binnings plus
// exactly one of the inline codes, an external store reference, or (v6) a
// shard map. Versions <= 4 interleave each column's codes with its
// metadata; version 5 moves the codes behind the presence flag after all
// columns; version 6 adds the shard-map variant.
func readBinnedParts(d *decoder, t *table.Table, v uint16) ([]binning.ColumnBins, [][]uint16, *storeRef, *shard.Map) {
	if d.err != nil {
		return nil, nil, nil, nil
	}
	nCols := int(d.u32())
	if d.err != nil {
		return nil, nil, nil, nil
	}
	if nCols != t.NumCols() {
		d.fail("binned representation has %d columns, table has %d", nCols, t.NumCols())
		return nil, nil, nil, nil
	}
	nRows := t.NumRows()
	cols := make([]binning.ColumnBins, nCols)
	codes := make([][]uint16, nCols)
	for i := 0; i < nCols; i++ {
		cb := &cols[i]
		cb.Col = d.str()
		cb.Kind = table.Kind(d.u8())
		nLabels := int(d.u32())
		if d.err != nil {
			return nil, nil, nil, nil
		}
		if nLabels > 1<<16 {
			// Bin codes are uint16, so no column can have more bins.
			d.fail("column %d has %d bin labels", i, nLabels)
			return nil, nil, nil, nil
		}
		cb.Labels = make([]string, nLabels)
		for j := range cb.Labels {
			cb.Labels[j] = d.str()
		}
		nCuts := int(d.u32())
		cb.Cuts = d.f64sN(nCuts)
		nCat := int(d.u32())
		catInts := d.i32s(nCat)
		cb.CatToBin = make([]int, len(catInts))
		for j, v := range catInts {
			cb.CatToBin[j] = int(v)
		}
		cb.MissingBin = int(d.i64())
		if v <= 4 {
			codes[i] = d.u16s(nRows)
		}
		if d.err != nil {
			return nil, nil, nil, nil
		}
	}
	if v <= 4 {
		return cols, codes, nil, nil
	}
	switch flag := d.u8(); {
	case d.err != nil:
		return nil, nil, nil, nil
	case flag == 1:
		for i := 0; i < nCols; i++ {
			codes[i] = d.u16s(nRows)
		}
		return cols, codes, nil, nil
	case flag == 0:
		ref := &storeRef{file: d.str(), blockRows: int(d.u32()), checksum: d.u32()}
		if d.err != nil {
			return nil, nil, nil, nil
		}
		if ref.file == "" || ref.file != filepath.Base(ref.file) {
			d.fail("invalid external code store reference %q", ref.file)
			return nil, nil, nil, nil
		}
		return cols, nil, ref, nil
	case flag == 2 && v >= 6:
		n := int(d.u32())
		if d.err != nil {
			return nil, nil, nil, nil
		}
		if n < 0 || n > 1<<20 {
			d.fail("shard map with %d shards", n)
			return nil, nil, nil, nil
		}
		sm := &shard.Map{Shards: make([]shard.Desc, 0, n)}
		for i := 0; i < n; i++ {
			sd := shard.Desc{
				File:      d.str(),
				Rows:      int(d.u64()),
				BlockRows: int(d.u32()),
				Checksum:  d.u32(),
			}
			if d.err != nil {
				return nil, nil, nil, nil
			}
			if sd.File == "" || sd.File != filepath.Base(sd.File) || sd.Rows < 0 || sd.BlockRows <= 0 {
				d.fail("invalid shard map entry %d (%q, %d rows, %d rows/block)", i, sd.File, sd.Rows, sd.BlockRows)
				return nil, nil, nil, nil
			}
			sm.Shards = append(sm.Shards, sd)
		}
		if sm.TotalRows() != nRows {
			d.fail("shard map holds %d rows, table has %d", sm.TotalRows(), nRows)
			return nil, nil, nil, nil
		}
		return cols, nil, nil, sm
	default:
		d.fail("unknown codes-section flag %d", flag)
		return nil, nil, nil, nil
	}
}

// f64s with an explicit leading count (cuts have no implied length).
func (e *encoder) f64s(xs []float64) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.f64(x)
	}
}

func writeEmbedding(e *encoder, m *word2vec.Model) {
	e.u32(uint32(m.Dim()))
	e.u32(uint32(m.VocabSize()))
	e.i32s(m.Tokens())
	e.f32s(m.VectorData())
	e.f32s(m.ContextData())
}

func readEmbedding(d *decoder) *word2vec.Model {
	dim := int(d.u32())
	vocab := int(d.u32())
	if d.err != nil {
		return nil
	}
	if dim <= 0 || dim > 1<<16 {
		d.fail("embedding dimension %d out of range", dim)
		return nil
	}
	tokens := d.i32s(vocab)
	vecs := d.f32s(vocab * dim)
	ctx := d.f32s(vocab * dim)
	if d.err != nil {
		return nil
	}
	m, err := word2vec.Restore(dim, tokens, vecs, ctx)
	if err != nil {
		d.fail("rebuilding embedding: %v", err)
		return nil
	}
	return m
}

// writeBinCounts serializes the cumulative per-column per-bin row counts
// (format v3): the streaming append path's drift baseline.
func writeBinCounts(e *encoder, counts [][]int64) {
	e.u32(uint32(len(counts)))
	for _, cc := range counts {
		e.u32(uint32(len(cc)))
		for _, v := range cc {
			e.i64(v)
		}
	}
}

func readBinCounts(d *decoder, t *table.Table, cols []binning.ColumnBins) [][]int64 {
	if d.err != nil || cols == nil {
		return nil
	}
	nc := int(d.u32())
	if d.err != nil {
		return nil
	}
	if nc != len(cols) {
		d.fail("bin counts for %d columns, binning has %d", nc, len(cols))
		return nil
	}
	out := make([][]int64, nc)
	nRows := int64(t.NumRows())
	for c := range out {
		n := int(d.u32())
		if d.err != nil {
			return nil
		}
		if n != cols[c].NumBins() {
			d.fail("column %d has %d bin counts, %d bins", c, n, cols[c].NumBins())
			return nil
		}
		cc := make([]int64, n)
		total := int64(0)
		for i := range cc {
			cc[i] = d.i64()
			if cc[i] < 0 {
				d.fail("column %d has negative bin count", c)
				return nil
			}
			total += cc[i]
		}
		if d.err != nil {
			return nil
		}
		if total != nRows {
			d.fail("column %d bin counts sum to %d, table has %d rows", c, total, nRows)
			return nil
		}
		out[c] = cc
	}
	return out
}

func writeAffinity(e *encoder, aff []float64, nCols int) {
	e.u32(uint32(nCols))
	for _, a := range aff {
		e.f64(a)
	}
}

func readAffinity(d *decoder, t *table.Table) []float64 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n != t.NumCols() {
		d.fail("affinity matrix for %d columns, table has %d", n, t.NumCols())
		return nil
	}
	return d.f64sN(n * n)
}

// ---------------------------------------------------------------------------
// Primitive codec. The encoder and decoder carry a sticky error so sections
// can be written/read straight-line; the decoder reads large slices in
// bounded chunks so that a corrupted length fails with ErrCorrupt at EOF
// instead of attempting one huge allocation.

type encoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *encoder) bytes(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *encoder) u8(v uint8) { e.bytes([]byte{v}) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) u16(v uint16) { binary.LittleEndian.PutUint16(e.buf[:2], v); e.bytes(e.buf[:2]) }
func (e *encoder) u32(v uint32) { binary.LittleEndian.PutUint32(e.buf[:4], v); e.bytes(e.buf[:4]) }
func (e *encoder) u64(v uint64) { binary.LittleEndian.PutUint64(e.buf[:8], v); e.bytes(e.buf[:8]) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

func (e *encoder) i32s(xs []int32) {
	if e.err != nil {
		return
	}
	buf := make([]byte, 0, 1<<16)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		if len(buf) >= 1<<16 {
			e.bytes(buf)
			buf = buf[:0]
		}
	}
	e.bytes(buf)
}

func (e *encoder) u16s(xs []uint16) {
	buf := make([]byte, 0, 1<<16)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint16(buf, x)
		if len(buf) >= 1<<16 {
			e.bytes(buf)
			buf = buf[:0]
		}
	}
	e.bytes(buf)
}

func (e *encoder) f32s(xs []float32) {
	buf := make([]byte, 0, 1<<16)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
		if len(buf) >= 1<<16 {
			e.bytes(buf)
			buf = buf[:0]
		}
	}
	e.bytes(buf)
}

type decoder struct {
	r   io.Reader
	h   hash.Hash32
	err error
	buf [8]byte
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) bytes(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = fmt.Errorf("%w: unexpected end of file", ErrCorrupt)
		return
	}
	d.h.Write(p)
}

func (d *decoder) u8() uint8 {
	d.bytes(d.buf[:1])
	return d.buf[0]
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u16() uint16 {
	d.bytes(d.buf[:2])
	return binary.LittleEndian.Uint16(d.buf[:2])
}

func (d *decoder) u32() uint32 {
	d.bytes(d.buf[:4])
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *decoder) u64() uint64 {
	d.bytes(d.buf[:8])
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// maxChunk bounds single allocations while decoding; corrupted lengths then
// hit EOF after at most one chunk instead of allocating gigabytes up front.
const maxChunk = 1 << 20

func (d *decoder) str() string {
	// Chunked like every variable-length read, so Save/Load stay symmetric
	// for strings of any length while corrupt lengths still fail at EOF.
	return string(d.raw(int(d.u32())))
}

// raw reads n bytes in bounded chunks.
func (d *decoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 {
		d.fail("negative length %d", n)
		return nil
	}
	out := make([]byte, 0, min(n, maxChunk))
	for len(out) < n {
		c := min(n-len(out), maxChunk)
		out = append(out, make([]byte, c)...)
		d.bytes(out[len(out)-c:])
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *decoder) f64sN(n int) []float64 {
	p := d.raw(n * 8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return out
}

func (d *decoder) f32s(n int) []float32 {
	p := d.raw(n * 4)
	if d.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return out
}

func (d *decoder) i32s(n int) []int32 {
	p := d.raw(n * 4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return out
}

func (d *decoder) u16s(n int) []uint16 {
	p := d.raw(n * 2)
	if d.err != nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(p[i*2:])
	}
	return out
}
