package rules

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/table"
)

// binned builds a binned table from categorical string columns where each
// distinct value is its own bin (MaxBins high enough).
func binned(t *testing.T, cols map[string][]string, order []string) *binning.Binned {
	t.Helper()
	tab := table.New("t")
	for _, name := range order {
		if err := tab.AddColumn(table.NewCategorical(name, cols[name])); err != nil {
			t.Fatal(err)
		}
	}
	b, err := binning.Bin(tab, binning.Options{MaxBins: 20})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// paperTable is the example table T̂ of Figure 3.
func paperTable(t *testing.T) *binning.Binned {
	t.Helper()
	return binned(t, map[string][]string{
		"CANCELLED": {"1", "1", "1", "1", "0", "0", "0", "0"},
		"DEP_TIME":  {"", "", "", "", "morning", "morning", "evening", "evening"},
		"YEAR":      {"2015", "2015", "2015", "2015", "2016", "2015", "2015", "2015"},
		"SCHED_DEP": {"afternoon", "afternoon", "morning", "morning", "morning", "morning", "evening", "afternoon"},
		"DISTANCE":  {"short", "medium", "medium", "short", "medium", "medium", "long", "long"},
	}, []string{"CANCELLED", "DEP_TIME", "YEAR", "SCHED_DEP", "DISTANCE"})
}

func TestMineEmptyTable(t *testing.T) {
	tab := table.New("t")
	b, err := binning.Bin(tab, binning.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Mine(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("rules on empty table: %d", len(rs))
	}
}

func TestMineFindsPlantedRule(t *testing.T) {
	// Planted: a=x AND b=y (first half of rows), c is noise-ish.
	n := 40
	a := make([]string, n)
	bb := make([]string, n)
	c := make([]string, n)
	for i := 0; i < n; i++ {
		if i < 20 {
			a[i], bb[i] = "x", "y"
		} else {
			a[i], bb[i] = "p", "q"
		}
		c[i] = []string{"u", "v"}[i%2]
	}
	b := binned(t, map[string][]string{"a": a, "b": bb, "c": c}, []string{"a", "b", "c"})
	rs, err := Mine(b, Options{MinSupport: 0.2, MinConfidence: 0.9, MinRuleSize: 2, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		lbl := r.Label(b)
		if len(r.Items) == 2 && strings.Contains(lbl, "a=x") && strings.Contains(lbl, "b=y") {
			found = true
			if r.Support != 0.5 {
				t.Fatalf("support = %v, want 0.5", r.Support)
			}
			if r.Tuples.Count() != 20 {
				t.Fatalf("tuples = %d", r.Tuples.Count())
			}
		}
	}
	if !found {
		t.Fatalf("planted rule not found among %d rules", len(rs))
	}
}

func TestRuleTuplesMatchDefinition(t *testing.T) {
	b := paperTable(t)
	rs, err := Mine(b, Options{MinSupport: 0.25, MinConfidence: 0.6, MinRuleSize: 2, MaxItemsetSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("expected rules on the paper table")
	}
	for _, r := range rs {
		// Check Tuples against a direct scan: a row satisfies the rule iff
		// it holds every item.
		for row := 0; row < b.NumRows(); row++ {
			holds := true
			for _, it := range r.Items {
				c := b.ColOfItem(it)
				if b.Item(c, row) != it {
					holds = false
					break
				}
			}
			if holds != r.Tuples.Contains(row) {
				t.Fatalf("rule %s: row %d holds=%v tuples=%v", r.Label(b), row, holds, r.Tuples.Contains(row))
			}
		}
		// Cols match item columns.
		want := map[int]bool{}
		for _, it := range r.Items {
			want[b.ColOfItem(it)] = true
		}
		if len(want) != len(r.Cols) {
			t.Fatalf("rule %s: cols %v vs items %v", r.Label(b), r.Cols, r.Items)
		}
		// Items are sorted and one per column.
		for i := 1; i < len(r.Items); i++ {
			if r.Items[i-1] >= r.Items[i] {
				t.Fatalf("items not sorted: %v", r.Items)
			}
		}
	}
}

func TestMinSupportRespected(t *testing.T) {
	b := paperTable(t)
	for _, minSup := range []float64{0.25, 0.5, 0.75} {
		rs, err := Mine(b, Options{MinSupport: minSup, MinConfidence: 0.1, MinRuleSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.Support < minSup-1e-9 {
				t.Fatalf("minSup %v violated: %v", minSup, r.Support)
			}
		}
	}
}

func TestMinConfidenceRespected(t *testing.T) {
	b := paperTable(t)
	rs, err := Mine(b, Options{MinSupport: 0.2, MinConfidence: 0.9, MinRuleSize: 2, AllSplits: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Confidence < 0.9-1e-9 {
			t.Fatalf("confidence %v < 0.9 for %s", r.Confidence, r.Label(b))
		}
	}
}

func TestMinRuleSizeRespected(t *testing.T) {
	b := paperTable(t)
	rs, err := Mine(b, Options{MinSupport: 0.25, MinConfidence: 0.5, MinRuleSize: 3, MaxItemsetSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Items) < 3 {
			t.Fatalf("rule size %d < 3", len(r.Items))
		}
	}
}

func TestMonotonicity(t *testing.T) {
	// Higher support threshold yields a subset of itemsets.
	b := paperTable(t)
	lo, err := Mine(b, Options{MinSupport: 0.25, MinConfidence: 0.5, MinRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Mine(b, Options{MinSupport: 0.5, MinConfidence: 0.5, MinRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	loSet := map[string]bool{}
	for _, r := range lo {
		loSet[key(r.Items)] = true
	}
	for _, r := range hi {
		if !loSet[key(r.Items)] {
			t.Fatalf("itemset %v frequent at 0.5 but not at 0.25", r.Items)
		}
	}
	if len(hi) > len(lo) {
		t.Fatalf("|hi| = %d > |lo| = %d", len(hi), len(lo))
	}
}

// bruteForceItemsets mines frequent itemsets (with one item per column) by
// exhaustive enumeration — the reference for Apriori correctness.
func bruteForceItemsets(b *binning.Binned, minCount, maxSize int) map[string]int {
	n := b.NumRows()
	m := b.NumCols()
	out := map[string]int{}
	// Enumerate all subsets of columns up to maxSize, then all bin choices.
	var cols []int
	var rec func(start int)
	rec = func(start int) {
		if len(cols) > 0 {
			// All bin combos for these columns.
			choices := make([]int, len(cols))
			for {
				items := make(Itemset, len(cols))
				for i, c := range cols {
					items[i] = b.ItemOf(c, choices[i])
				}
				sort.Slice(items, func(x, y int) bool { return items[x] < items[y] })
				count := 0
				for r := 0; r < n; r++ {
					ok := true
					for i, c := range cols {
						if int(b.Codes[c][r]) != choices[i] {
							ok = false
							break
						}
					}
					if ok {
						count++
					}
				}
				if count >= minCount {
					out[key(items)] = count
				}
				// Next combo.
				i := 0
				for ; i < len(cols); i++ {
					choices[i]++
					if choices[i] < b.Cols[cols[i]].NumBins() {
						break
					}
					choices[i] = 0
				}
				if i == len(cols) {
					break
				}
			}
		}
		if len(cols) == maxSize {
			return
		}
		for c := start; c < m; c++ {
			cols = append(cols, c)
			rec(c + 1)
			cols = cols[:len(cols)-1]
		}
	}
	rec(0)
	return out
}

func TestAprioriMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(30)
		m := 3 + rng.Intn(3)
		cols := map[string][]string{}
		var order []string
		alphabet := []string{"a", "b", "c"}
		for c := 0; c < m; c++ {
			name := string(rune('p' + c))
			vals := make([]string, n)
			for r := range vals {
				vals[r] = alphabet[rng.Intn(len(alphabet))]
			}
			cols[name] = vals
			order = append(order, name)
		}
		b := binned(t, cols, order)
		minSup := 0.2
		minCount := int(math.Ceil(minSup * float64(n)))
		want := bruteForceItemsets(b, minCount, 3)

		// Mine with confidence 0 (epsilon) so every frequent itemset of
		// size >= 1 yields a rule; compare itemset families.
		rs, err := Mine(b, Options{MinSupport: minSup, MinConfidence: 1e-9, MinRuleSize: 2, MaxItemsetSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, r := range rs {
			got[key(r.Items)] = r.Tuples.Count()
		}
		// Every mined itemset must be in brute force with equal count.
		for k, cnt := range got {
			if want[k] != cnt {
				t.Fatalf("trial %d: itemset %s count %d, brute force %d", trial, k, cnt, want[k])
			}
		}
		// Every brute-force itemset of size >= 2 must be mined (confidence
		// epsilon passes any split).
		for k, cnt := range want {
			size := strings.Count(k, ",")
			if size < 2 {
				continue
			}
			if got[k] != cnt {
				t.Fatalf("trial %d: brute-force itemset %s (count %d) missing from mined set", trial, k, cnt)
			}
		}
	}
}

func TestAllSplitsEmitsMore(t *testing.T) {
	b := paperTable(t)
	one, err := Mine(b, Options{MinSupport: 0.25, MinConfidence: 0.5, MinRuleSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Mine(b, Options{MinSupport: 0.25, MinConfidence: 0.5, MinRuleSize: 3, AllSplits: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(one) {
		t.Fatalf("AllSplits %d < deduped %d", len(all), len(one))
	}
}

func TestTargetColumns(t *testing.T) {
	b := paperTable(t)
	rs, err := Mine(b, Options{MinSupport: 0.25, MinConfidence: 0.5, MinRuleSize: 3, TargetCols: []string{"CANCELLED"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("expected target rules")
	}
	cancIdx := b.T.ColumnIndex("CANCELLED")
	for _, r := range rs {
		has := false
		for _, c := range r.Cols {
			if c == cancIdx {
				has = true
			}
		}
		if !has {
			t.Fatalf("rule %s lacks target column", r.Label(b))
		}
		// Tuples homogeneous in target bin.
		var bin = -1
		ok := true
		r.Tuples.ForEach(func(row int) bool {
			bcode := int(b.Codes[cancIdx][row])
			if bin == -1 {
				bin = bcode
			} else if bin != bcode {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("rule %s mixes target bins", r.Label(b))
		}
	}
}

func TestTargetColumnsUnknown(t *testing.T) {
	b := paperTable(t)
	if _, err := Mine(b, Options{TargetCols: []string{"nope"}}); err == nil {
		t.Fatal("unknown target column should error")
	}
}

func TestMaxRulesCap(t *testing.T) {
	b := paperTable(t)
	rs, err := Mine(b, Options{MinSupport: 0.2, MinConfidence: 0.3, MinRuleSize: 2, MaxItemsetSize: 4, AllSplits: true, MaxRules: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) > 5 {
		t.Fatalf("cap violated: %d", len(rs))
	}
}

func TestRuleLabel(t *testing.T) {
	b := paperTable(t)
	rs, err := Mine(b, Options{MinSupport: 0.25, MinConfidence: 0.5, MinRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("need rules")
	}
	lbl := rs[0].Label(b)
	if !strings.Contains(lbl, "=>") || !strings.Contains(lbl, "supp") {
		t.Fatalf("label = %q", lbl)
	}
}

func TestItemsetString(t *testing.T) {
	s := Itemset{1, 5, 9}
	if got := s.String(); got != "{1, 5, 9}" {
		t.Fatalf("String = %q", got)
	}
}

func TestForEachSplitCount(t *testing.T) {
	items := Itemset{1, 2, 3}
	n := 0
	forEachSplit(items, func(lhs, rhs Itemset) {
		n++
		if len(lhs)+len(rhs) != 3 {
			t.Fatal("split sizes must sum")
		}
	})
	if n != 6 { // 2^3 - 2
		t.Fatalf("splits = %d, want 6", n)
	}
}

func TestMergeSorted(t *testing.T) {
	got := mergeSorted(Itemset{1, 3, 5}, Itemset{2, 3, 6})
	want := Itemset{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("merge = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v", got)
		}
	}
}

func TestNumericRuleMining(t *testing.T) {
	// Numeric columns with a planted pattern: high x co-occurs with high y.
	n := 60
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		if i < 30 {
			x[i] = 100 + rng.Float64()*10
			y[i] = 100 + rng.Float64()*10
		} else {
			x[i] = rng.Float64() * 10
			y[i] = rng.Float64() * 10
		}
		z[i] = rng.Float64()
	}
	tab := table.New("t")
	for name, vals := range map[string][]float64{"x": x, "y": y, "z": z} {
		if err := tab.AddColumn(table.NewNumeric(name, vals)); err != nil {
			t.Fatal(err)
		}
	}
	b, err := binning.Bin(tab, binning.Options{MaxBins: 2, Strategy: binning.Quantile})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Mine(b, Options{MinSupport: 0.3, MinConfidence: 0.8, MinRuleSize: 2, MaxItemsetSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	xi, yi := tab.ColumnIndex("x"), tab.ColumnIndex("y")
	for _, r := range rs {
		if len(r.Cols) == 2 && r.Cols[0] == min(xi, yi) && r.Cols[1] == max(xi, yi) {
			found = true
		}
	}
	if !found {
		t.Fatalf("x-y rule not found in %d rules", len(rs))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
