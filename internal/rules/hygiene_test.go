package rules

import (
	"math"
	"strings"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/table"
)

// missingTable has a column whose missing values perfectly track another
// column's value — the paper's cancelled-flights NaN structure.
func missingTable(t *testing.T, n int) *binning.Binned {
	t.Helper()
	flag := make([]string, n)
	val := make([]float64, n)
	noise := make([]string, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			flag[i] = "on"
			val[i] = math.NaN()
		} else {
			flag[i] = "off"
			val[i] = float64(i % 7)
		}
		noise[i] = []string{"x", "y"}[i%2]
	}
	tab := table.New("t")
	for _, c := range []*table.Column{
		table.NewCategorical("flag", flag),
		table.NewNumeric("val", val),
		table.NewCategorical("noise", noise),
	} {
		if err := tab.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	b, err := binning.Bin(tab, binning.Options{MaxBins: 5, Strategy: binning.Quantile})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMissingExcludedByDefault(t *testing.T) {
	b := missingTable(t, 80)
	rs, err := Mine(b, Options{MinSupport: 0.2, MinConfidence: 0.6, MinRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if strings.Contains(r.Label(b), binning.MissingLabel) {
			t.Fatalf("default mining produced a missing-bin rule: %s", r.Label(b))
		}
	}
}

func TestIncludeMissingFindsNaNRule(t *testing.T) {
	b := missingTable(t, 80)
	rs, err := Mine(b, Options{MinSupport: 0.2, MinConfidence: 0.9, MinRuleSize: 2, IncludeMissing: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		lbl := r.Label(b)
		if strings.Contains(lbl, "flag=on") && strings.Contains(lbl, "val="+binning.MissingLabel) {
			found = true
			// The rule holds exactly on the flag=on rows.
			if r.Tuples.Count() != 20 {
				t.Fatalf("NaN rule tuples = %d, want 20", r.Tuples.Count())
			}
		}
	}
	if !found {
		t.Fatalf("flag=on => val=missing rule not found among %d rules", len(rs))
	}
}

func TestMaxItemShareDropsUbiquitousItems(t *testing.T) {
	// A constant column: its single item appears in 100% of rows and should
	// be excluded from mining by the default MaxItemShare = 0.9.
	n := 60
	constant := make([]string, n)
	varied := make([]string, n)
	other := make([]string, n)
	for i := 0; i < n; i++ {
		constant[i] = "always"
		varied[i] = []string{"a", "b", "c"}[i%3]
		other[i] = []string{"p", "q", "r"}[i%3] // correlated with varied
	}
	tab := table.New("t")
	for _, c := range []*table.Column{
		table.NewCategorical("constant", constant),
		table.NewCategorical("varied", varied),
		table.NewCategorical("other", other),
	} {
		if err := tab.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	b, err := binning.Bin(tab, binning.Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Mine(b, Options{MinSupport: 0.2, MinConfidence: 0.6, MinRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("the varied-other correlation should still be mined")
	}
	for _, r := range rs {
		if strings.Contains(r.Label(b), "constant=") {
			t.Fatalf("ubiquitous item leaked into rule: %s", r.Label(b))
		}
	}
	// Raising the share bound re-admits the constant column.
	rs2, err := Mine(b, Options{MinSupport: 0.2, MinConfidence: 0.6, MinRuleSize: 2, MaxItemShare: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	foundConst := false
	for _, r := range rs2 {
		if strings.Contains(r.Label(b), "constant=") {
			foundConst = true
		}
	}
	if !foundConst {
		t.Fatal("MaxItemShare=1.0 should re-admit ubiquitous items")
	}
}
