// Package rules implements association-rule mining over binned tables
// (Def. 3.4), in the style of the classic Apriori algorithm of Agrawal &
// Srikant (paper reference [2]) which the paper's implementation uses via
// efficient-apriori.
//
// Transactions are table rows; items are (column, bin) pairs — the global
// item ids assigned by package binning. Because a row holds exactly one item
// per column, candidate itemsets mixing two items of the same column are
// pruned immediately. Support counting is vertical: every item carries the
// bitset of rows containing it and itemset support is a bitset intersection.
//
// For the paper's cell-coverage metric (Def. 3.6) only the itemset of a rule
// matters: a rule R is covered iff its column set is selected and some
// selected row satisfies *all* items of R (both sides), and the cells it
// describes are rows(R) × cols(R). Any two rules with the same underlying
// itemset are therefore coverage-equivalent, so by default the miner emits
// one rule per frequent itemset that admits at least one split with
// sufficient confidence (the maximum-confidence split is kept for display).
// Set Options.AllSplits to emit every qualifying split instead.
package rules

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"subtab/internal/binning"
	"subtab/internal/bitset"
)

// Itemset is a sorted set of global item ids.
type Itemset []int32

// String renders the itemset using the binned table's labels.
func (s Itemset) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = fmt.Sprintf("%d", it)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Rule is an association rule LHS → RHS over binned items.
type Rule struct {
	LHS, RHS   Itemset
	Items      Itemset // LHS ∪ RHS, sorted
	Support    float64 // fraction of all rows satisfying Items
	Confidence float64
	Tuples     *bitset.Set // rows satisfying Items (T_R of Def. 3.4)
	Cols       []int       // sorted column indices used by the rule (U_R)
}

// Label renders the rule with human-readable item labels.
func (r *Rule) Label(b *binning.Binned) string {
	part := func(items Itemset) string {
		ps := make([]string, len(items))
		for i, it := range items {
			ps[i] = b.ItemLabel(it)
		}
		return strings.Join(ps, " AND ")
	}
	return fmt.Sprintf("%s => %s  (supp %.3f, conf %.3f)",
		part(r.LHS), part(r.RHS), r.Support, r.Confidence)
}

// Options configures mining. Defaults follow the paper's §6.1 settings.
type Options struct {
	// MinSupport is the minimum fraction of rows an itemset must cover
	// (paper default 0.1).
	MinSupport float64
	// MinConfidence is the minimum rule confidence (paper default 0.6).
	MinConfidence float64
	// MinRuleSize is the minimum number of items in a rule, both sides
	// combined (paper default 3).
	MinRuleSize int
	// MaxItemsetSize bounds the frequent-itemset search depth (default 4).
	MaxItemsetSize int
	// TargetCols restricts mining to rules involving the target columns. As
	// in the paper, the data is split by the binned values of the target
	// columns, rules are mined per subset, and the subset's target items are
	// attached to each rule.
	TargetCols []string
	// AllSplits emits every qualifying LHS→RHS split instead of one
	// coverage-equivalent rule per frequent itemset.
	AllSplits bool
	// MaxRules caps the output (0 = unlimited); rules with higher support
	// are kept first.
	MaxRules int
	// IncludeMissing treats missing-value bins as items. Off by default:
	// standard market-basket semantics treat an absent value as no item, and
	// near-ubiquitous NaN bins otherwise flood the rule set with
	// uninformative co-missingness rules.
	IncludeMissing bool
	// MaxItemShare drops items whose relative frequency exceeds this bound
	// (default 0.9): a value present in nearly every row carries no
	// information and only manufactures junk rules.
	MaxItemShare float64
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.1
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.6
	}
	if o.MinRuleSize <= 0 {
		o.MinRuleSize = 3
	}
	if o.MaxItemsetSize <= 0 {
		o.MaxItemsetSize = 4
	}
	if o.MaxItemsetSize < o.MinRuleSize {
		o.MaxItemsetSize = o.MinRuleSize
	}
	if o.MaxItemShare <= 0 || o.MaxItemShare > 1 {
		o.MaxItemShare = 0.9
	}
	return o
}

// Mine discovers association rules in the binned table.
func Mine(b *binning.Binned, opt Options) ([]Rule, error) {
	opt = opt.withDefaults()
	n := b.NumRows()
	if n == 0 {
		return nil, nil
	}
	// Mining reads every cell many times over; a store-backed binning
	// (out-of-core selection) materializes a private in-memory copy of the
	// codes first rather than hammering the store with random access.
	codes, err := b.MaterializedCodes()
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	if len(opt.TargetCols) == 0 {
		all := bitset.New(n)
		all.Fill()
		return capRules(mineSubset(b, codes, all, nil, opt), opt.MaxRules), nil
	}

	// Target-column mode: split rows by the target columns' bin combination,
	// mine each subset, and attach the subset's target items to every rule.
	targetIdx := make([]int, 0, len(opt.TargetCols))
	for _, name := range opt.TargetCols {
		ci := b.T.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("rules: unknown target column %q", name)
		}
		targetIdx = append(targetIdx, ci)
	}
	type part struct {
		rows  *bitset.Set
		items Itemset
	}
	parts := make(map[string]*part)
	for r := 0; r < n; r++ {
		var key strings.Builder
		items := make(Itemset, len(targetIdx))
		for i, ci := range targetIdx {
			items[i] = b.ItemOf(ci, int(codes[ci][r]))
			fmt.Fprintf(&key, "%d,", items[i])
		}
		k := key.String()
		p, ok := parts[k]
		if !ok {
			sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
			p = &part{rows: bitset.New(n), items: items}
			parts[k] = p
		}
		p.rows.Add(r)
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []Rule
	for _, k := range keys {
		p := parts[k]
		// Rule sizes include the attached target items; mined itemsets may be
		// correspondingly smaller.
		sub := opt
		sub.MinRuleSize = opt.MinRuleSize - len(p.items)
		if sub.MinRuleSize < 1 {
			sub.MinRuleSize = 1
		}
		sub.MaxItemsetSize = opt.MaxItemsetSize - len(p.items)
		if sub.MaxItemsetSize < sub.MinRuleSize {
			sub.MaxItemsetSize = sub.MinRuleSize
		}
		mined := mineSubset(b, codes, p.rows, skipCols(targetIdx), sub)
		for i := range mined {
			r := &mined[i]
			r.RHS = append(append(Itemset{}, r.RHS...), p.items...)
			r.Items = mergeSorted(r.Items, p.items)
			r.Cols = mergeCols(r.Cols, targetIdx)
			r.Support = float64(r.Tuples.Count()) / float64(n)
		}
		out = append(out, mined...)
	}
	return capRules(out, opt.MaxRules), nil
}

func skipCols(cols []int) map[int]bool {
	m := make(map[int]bool, len(cols))
	for _, c := range cols {
		m[c] = true
	}
	return m
}

// mineSubset runs Apriori over the rows in `rows`, excluding columns in
// `skip`. Support thresholds are relative to |rows|.
func mineSubset(b *binning.Binned, allCodes [][]uint16, rows *bitset.Set, skip map[int]bool, opt Options) []Rule {
	n := b.NumRows()
	sz := rows.Count()
	if sz == 0 {
		return nil
	}
	minCount := int(math.Ceil(opt.MinSupport * float64(sz)))
	if minCount < 1 {
		minCount = 1
	}
	maxCount := int(opt.MaxItemShare * float64(sz))

	// Level 1: frequent items with their row bitsets (restricted to rows).
	type node struct {
		items Itemset
		set   *bitset.Set
	}
	var level []node
	itemSets := make(map[int32]*bitset.Set)
	for c := 0; c < b.NumCols(); c++ {
		if skip[c] {
			continue
		}
		missingBin := b.Cols[c].MissingBin
		perBin := make(map[uint16]*bitset.Set)
		codes := allCodes[c]
		rows.ForEach(func(r int) bool {
			code := codes[r]
			if !opt.IncludeMissing && int(code) == missingBin {
				return true
			}
			s, ok := perBin[code]
			if !ok {
				s = bitset.New(n)
				perBin[code] = s
			}
			s.Add(r)
			return true
		})
		for code, s := range perBin {
			if cnt := s.Count(); cnt >= minCount && cnt <= maxCount {
				id := b.ItemOf(c, int(code))
				itemSets[id] = s
			}
		}
	}
	ids := make([]int32, 0, len(itemSets))
	for id := range itemSets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		level = append(level, node{items: Itemset{id}, set: itemSets[id]})
	}

	// Frequent itemsets of every size, keyed for subset pruning.
	frequent := make(map[string]*bitset.Set)
	var allFrequent []node
	for _, nd := range level {
		frequent[key(nd.items)] = nd.set
		allFrequent = append(allFrequent, nd)
	}

	for size := 2; size <= opt.MaxItemsetSize && len(level) > 1; size++ {
		var next []node
		// Join step: combine itemsets sharing the first size-2 items.
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, c := level[i].items, level[j].items
				if !samePrefix(a, c) {
					break // level is sorted; later j's share even less
				}
				last := c[len(c)-1]
				if b.ColOfItem(last) == b.ColOfItem(a[len(a)-1]) {
					continue // same column: support is zero by construction
				}
				cand := append(append(Itemset{}, a...), last)
				if size > 2 && !allSubsetsFrequent(cand, frequent) {
					continue
				}
				s := bitset.Intersect(level[i].set, itemSets[last])
				if s.Count() >= minCount {
					nd := node{items: cand, set: s}
					next = append(next, nd)
					frequent[key(cand)] = s
					allFrequent = append(allFrequent, nd)
				}
			}
		}
		level = next
	}

	// Rule generation.
	var out []Rule
	for _, nd := range allFrequent {
		if len(nd.items) < opt.MinRuleSize {
			continue
		}
		support := float64(nd.set.Count()) / float64(sz)
		suppCount := nd.set.Count()
		if opt.AllSplits {
			out = append(out, enumerateSplits(b, nd.items, nd.set, suppCount, support, frequent, opt)...)
			continue
		}
		// One coverage-equivalent rule: the maximum-confidence split.
		bestConf := -1.0
		var bestLHS, bestRHS Itemset
		forEachSplit(nd.items, func(lhs, rhs Itemset) {
			if len(lhs) == 0 || len(rhs) == 0 {
				return
			}
			ls, ok := frequent[key(lhs)]
			if !ok {
				return // LHS infrequent: cannot bound confidence; skip
			}
			conf := float64(suppCount) / float64(ls.Count())
			if conf > bestConf {
				bestConf = conf
				bestLHS = append(Itemset{}, lhs...)
				bestRHS = append(Itemset{}, rhs...)
			}
		})
		if bestConf >= opt.MinConfidence {
			out = append(out, makeRule(b, bestLHS, bestRHS, nd.items, nd.set, support, bestConf))
		}
	}
	return out
}

func enumerateSplits(b *binning.Binned, items Itemset, set *bitset.Set, suppCount int, support float64, frequent map[string]*bitset.Set, opt Options) []Rule {
	var out []Rule
	forEachSplit(items, func(lhs, rhs Itemset) {
		if len(lhs) == 0 || len(rhs) == 0 {
			return
		}
		ls, ok := frequent[key(lhs)]
		if !ok {
			return
		}
		conf := float64(suppCount) / float64(ls.Count())
		if conf >= opt.MinConfidence {
			out = append(out, makeRule(b,
				append(Itemset{}, lhs...), append(Itemset{}, rhs...),
				items, set, support, conf))
		}
	})
	return out
}

func makeRule(b *binning.Binned, lhs, rhs, items Itemset, set *bitset.Set, support, conf float64) Rule {
	cols := make([]int, 0, len(items))
	for _, it := range items {
		cols = append(cols, b.ColOfItem(it))
	}
	sort.Ints(cols)
	return Rule{
		LHS: lhs, RHS: rhs,
		Items:      append(Itemset{}, items...),
		Support:    support,
		Confidence: conf,
		Tuples:     set,
		Cols:       cols,
	}
}

// forEachSplit enumerates every partition of items into (lhs, rhs) with both
// sides non-empty. items must be small (rule sizes are <= ~5).
func forEachSplit(items Itemset, fn func(lhs, rhs Itemset)) {
	k := len(items)
	if k > 20 {
		return // defensive: never expected
	}
	var lhs, rhs Itemset
	for mask := 1; mask < (1<<k)-1; mask++ {
		lhs, rhs = lhs[:0], rhs[:0]
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				lhs = append(lhs, items[i])
			} else {
				rhs = append(rhs, items[i])
			}
		}
		fn(lhs, rhs)
	}
}

func samePrefix(a, b Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand Itemset, frequent map[string]*bitset.Set) bool {
	sub := make(Itemset, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != drop {
				sub = append(sub, it)
			}
		}
		if _, ok := frequent[key(sub)]; !ok {
			return false
		}
	}
	return true
}

func key(items Itemset) string {
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%d,", it)
	}
	return b.String()
}

func mergeSorted(a, b Itemset) Itemset {
	out := make(Itemset, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func mergeCols(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, x := range append(append([]int{}, a...), b...) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func capRules(rs []Rule, max int) []Rule {
	if max <= 0 || len(rs) <= max {
		return rs
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Support > rs[j].Support })
	return rs[:max]
}
