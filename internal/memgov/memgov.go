// Package memgov is the process-wide byte-accounted memory governor.
//
// A serving process holds several kinds of resident bytes that all grow
// with tenant count and table size: the model store's cached models, each
// model's full-table tuple-vector cache, the memoized candidate samples,
// the coordinator's scatter/gather overlay cache, and every in-flight
// request's working set (sampled-vector slabs, response cells). Before this
// package they were governed by three uncoordinated knobs (an entry-counted
// LRU, the slab spill budget, and nothing at all for the vector caches);
// the governor replaces that with one ledger:
//
//   - Resident consumers report growth and shrinkage under a named class
//     (Grow/Shrink). Growth past the budget triggers the registered
//     eviction callbacks — reclaimers that drop cold resident state, such
//     as the model store's cold-end LRU entries — until the ledger fits
//     again (or nothing more can be reclaimed; resident growth is never
//     refused, because the bytes already exist — admission control is what
//     keeps the overdraw from compounding).
//   - Requests reserve their estimated transient working set up front
//     (Admit). A reservation that cannot fit even after eviction fails
//     with ErrOverBudget, which the HTTP layer maps to 429 + Retry-After —
//     load sheds at the door instead of OOMing in the middle of a select.
//   - Limiter bounds per-key (per-table) request concurrency, so one hot
//     tenant cannot monopolize the process.
//
// All Governor and Limiter methods are safe for concurrent use and are
// no-ops on a nil receiver, so call sites need no "is a governor
// configured?" branches.
//
// Locking contract: eviction callbacks run WITHOUT the governor lock held
// and may take their owner's locks (the model store's evictor takes the
// store mutex). Consumers must therefore never call Grow or Admit while
// holding a lock their own evictor acquires; Shrink never runs evictors and
// is safe anywhere.
package memgov

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known accounting classes. Classes are open-ended strings; these
// constants just keep the repo's consumers consistent (README "Memory
// model" documents each).
const (
	// ClassModels is the model store's resident models (table cells, bin
	// codes, embedding matrices, affinity matrix).
	ClassModels = "models"
	// ClassVectorCache is the per-model full-table tuple-vector cache
	// (rows × dim × 4 bytes, the largest per-tenant cache).
	ClassVectorCache = "vector-cache"
	// ClassSampleCache is the per-model memoized candidate samples of the
	// scaled selection path.
	ClassSampleCache = "sample-cache"
	// ClassCoordCache is a coordinator's per-(budget,cols) scatter/gather
	// sample cache (candidate rows + code overlay).
	ClassCoordCache = "coord-cache"
	// ClassRequests is in-flight requests' admitted working sets
	// (sampled-vector slabs, response assembly).
	ClassRequests = "requests"
)

// ErrOverBudget is returned by Admit when a reservation cannot fit under
// the budget even after eviction. RetryAfter is the client back-off hint
// the HTTP layer forwards as a Retry-After header.
type ErrOverBudget struct {
	Need       int64
	Budget     int64
	Used       int64
	RetryAfter time.Duration
}

func (e *ErrOverBudget) Error() string {
	return fmt.Sprintf("memgov: cannot admit %d bytes (budget %d, used %d)", e.Need, e.Budget, e.Used)
}

// Evictor is a reclaim callback: try to release at least need resident
// bytes, returning the bytes actually released (best effort; 0 is fine).
// Evictors run without the governor lock held, possibly concurrently with
// other governor traffic, and must themselves report what they released via
// Shrink on behalf of the classes they drained — the return value only
// tells the reclaim loop whether continuing is useful.
type Evictor func(need int64) int64

type evictorEntry struct {
	class string
	fn    Evictor
}

// Governor is the process-wide ledger. The zero value and the nil pointer
// are both valid "no governor" instances: accounting and admission become
// no-ops.
type Governor struct {
	budget int64 // <= 0: unlimited (accounting still runs, admission always passes)

	mu       sync.Mutex
	used     int64
	peak     int64
	classes  map[string]int64
	evictors []evictorEntry

	admitted   atomic.Int64
	rejected   atomic.Int64
	reclaims   atomic.Int64
	reclaimedB atomic.Int64
}

// New returns a governor enforcing the given byte budget; budget <= 0
// builds an unlimited governor that still keeps the ledger (useful for
// observability without enforcement).
func New(budget int64) *Governor {
	return &Governor{budget: budget, classes: make(map[string]int64)}
}

// Budget returns the configured budget (0 = unlimited). Nil-safe.
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// Used returns the currently accounted resident + admitted bytes. Nil-safe.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// Peak returns the high-water mark of Used over the governor's lifetime.
func (g *Governor) Peak() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// ClassBytes returns the bytes currently accounted under class.
func (g *Governor) ClassBytes(class string) int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.classes[class]
}

// Stats is an observability snapshot of the ledger.
type Stats struct {
	BudgetBytes int64            `json:"budget_bytes"`
	UsedBytes   int64            `json:"used_bytes"`
	PeakBytes   int64            `json:"peak_bytes"`
	Classes     map[string]int64 `json:"classes"`
	Admitted    int64            `json:"admitted"`
	Rejected    int64            `json:"rejected"`
	Reclaims    int64            `json:"reclaims"`
	Reclaimed   int64            `json:"reclaimed_bytes"`
}

// Stats returns a snapshot. Nil-safe (zero stats).
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	classes := make(map[string]int64, len(g.classes))
	for k, v := range g.classes {
		if v != 0 {
			classes[k] = v
		}
	}
	st := Stats{
		BudgetBytes: g.budget,
		UsedBytes:   g.used,
		PeakBytes:   g.peak,
		Classes:     classes,
	}
	g.mu.Unlock()
	st.Admitted = g.admitted.Load()
	st.Rejected = g.rejected.Load()
	st.Reclaims = g.reclaims.Load()
	st.Reclaimed = g.reclaimedB.Load()
	return st
}

// RegisterEvictor adds a reclaim callback under the given class name. The
// class names the consumer the evictor drains: a reclaim triggered by class
// X skips X's own evictors, so a consumer growing cannot be asked to evict
// itself mid-insert (the deadlock- and livelock-prone shape). Callbacks run
// in registration order. Nil-safe no-op.
func (g *Governor) RegisterEvictor(class string, fn Evictor) {
	if g == nil || fn == nil {
		return
	}
	g.mu.Lock()
	g.evictors = append(g.evictors, evictorEntry{class: class, fn: fn})
	g.mu.Unlock()
}

// Grow records n freshly resident bytes under class and, when the ledger
// exceeds the budget, runs eviction callbacks (other classes') until it
// fits or nothing more frees. Growth itself never fails — the bytes exist
// whether or not the ledger likes it; see the package comment. n <= 0 is a
// no-op. Nil-safe. Must not be called while holding a lock the caller's own
// evictor acquires.
func (g *Governor) Grow(class string, n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.mu.Lock()
	g.classes[class] += n
	g.used += n
	over := int64(0)
	if g.budget > 0 && g.used > g.budget {
		over = g.used - g.budget
	}
	if g.used > g.peak && over == 0 {
		g.peak = g.used
	}
	g.mu.Unlock()
	if over > 0 {
		g.reclaim(class, over)
		// The peak is recorded after reclamation, so it reflects what the
		// process actually held onto, not the instant before eviction caught
		// up. (Transient overshoot is bounded by one consumer's largest
		// single Grow.)
		g.mu.Lock()
		if g.used > g.peak {
			g.peak = g.used
		}
		g.mu.Unlock()
	}
}

// Shrink records n bytes under class as no longer resident. The subtraction
// is exact, not clamped: a revocation racing its own grant (see Account)
// may transiently drive a class negative, and clamping would turn that
// transient into a permanent phantom balance. Never runs evictors; safe
// under any caller lock. Nil-safe.
func (g *Governor) Shrink(class string, n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.mu.Lock()
	g.classes[class] -= n
	g.used -= n
	g.mu.Unlock()
}

// Admit reserves n transient bytes for a request's working set under class
// (typically ClassRequests), evicting resident consumers if needed. It
// returns a release func on success and *ErrOverBudget when the
// reservation cannot fit even after reclaim. n <= 0 admits trivially.
// Nil-safe (always admits).
func (g *Governor) Admit(class string, n int64) (func(), error) {
	if g == nil || n <= 0 {
		return func() {}, nil
	}
	if g.budget > 0 && n <= g.budget {
		// Fast path needs headroom; reclaim once if we don't have it.
		g.mu.Lock()
		fits := g.used+n <= g.budget
		need := g.used + n - g.budget
		g.mu.Unlock()
		if !fits {
			g.reclaim(class, need)
		}
	}
	g.mu.Lock()
	if g.budget > 0 && g.used+n > g.budget {
		used := g.used
		g.mu.Unlock()
		g.rejected.Add(1)
		return nil, &ErrOverBudget{Need: n, Budget: g.budget, Used: used, RetryAfter: time.Second}
	}
	g.classes[class] += n
	g.used += n
	if g.used > g.peak {
		g.peak = g.used
	}
	g.mu.Unlock()
	g.admitted.Add(1)
	var once sync.Once
	return func() { once.Do(func() { g.Shrink(class, n) }) }, nil
}

// reclaim runs eviction callbacks (skipping skipClass's own) until need
// bytes were reported released or every evictor returned nothing.
func (g *Governor) reclaim(skipClass string, need int64) {
	g.mu.Lock()
	evs := make([]evictorEntry, len(g.evictors))
	copy(evs, g.evictors)
	g.mu.Unlock()
	g.reclaims.Add(1)
	remaining := need
	for _, e := range evs {
		if remaining <= 0 {
			break
		}
		if e.class == skipClass {
			continue
		}
		freed := e.fn(remaining)
		if freed > 0 {
			g.reclaimedB.Add(freed)
			remaining -= freed
		}
	}
}

// ClassNames returns the classes with non-zero bytes, sorted (stats/tests).
func (g *Governor) ClassNames() []string {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	names := make([]string, 0, len(g.classes))
	for k, v := range g.classes {
		if v != 0 {
			names = append(names, k)
		}
	}
	g.mu.Unlock()
	sort.Strings(names)
	return names
}

// Account reconciles one cache's resident bytes with the governor when the
// cache cannot call Grow under its own lock (because the governor's
// evictors take that lock — see the package locking contract). The cache
// mutates under its own mutex, bumps a generation counter, records the new
// resident total, unlocks, and then calls Settle(gen, total). Settles can
// arrive out of order when a release races a build; the generation makes
// the reconciliation idempotent: a stale settle (lower gen than the last
// applied) is discarded, so a release that lands after an in-flight grant
// still revokes it. Shrink being exact (unclamped) is what lets the
// out-of-order Grow/Shrink pairs net to the true total.
type Account struct {
	g     *Governor
	class string

	mu   sync.Mutex
	gen  uint64
	held int64
}

// Account returns a per-consumer reconciliation handle for class. Nil-safe
// (a nil governor yields a nil account, whose methods are no-ops).
func (g *Governor) Account(class string) *Account {
	if g == nil {
		return nil
	}
	return &Account{g: g, class: class}
}

// Settle reconciles the account to target resident bytes as of generation
// gen, calling Grow/Shrink for the delta. Stale settles (gen lower than one
// already applied) are discarded. Must not be called while holding a lock
// the owning consumer's evictor acquires (Grow may run evictors) — callers
// settle after unlocking. Nil-safe.
func (a *Account) Settle(gen uint64, target int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if gen < a.gen {
		a.mu.Unlock()
		return
	}
	a.gen = gen
	delta := target - a.held
	a.held = target
	a.mu.Unlock()
	if delta > 0 {
		a.g.Grow(a.class, delta)
	} else if delta < 0 {
		a.g.Shrink(a.class, -delta)
	}
}

// Held returns the bytes this account last settled to. Nil-safe.
func (a *Account) Held() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.held
}

// Limiter bounds concurrent holders per key — the per-table request
// concurrency limit. A nil Limiter admits everything.
type Limiter struct {
	max int

	mu  sync.Mutex
	cur map[string]int
	rej atomic.Int64
}

// NewLimiter returns a limiter admitting up to maxPerKey concurrent holders
// of each key; maxPerKey <= 0 returns nil (unlimited).
func NewLimiter(maxPerKey int) *Limiter {
	if maxPerKey <= 0 {
		return nil
	}
	return &Limiter{max: maxPerKey, cur: make(map[string]int)}
}

// Acquire takes a slot for key. It returns (release, true) on success and
// (nil, false) when key is already at its concurrency limit — the caller
// sheds the request (429 + Retry-After) instead of queueing unboundedly.
// Nil-safe: a nil limiter always admits.
func (l *Limiter) Acquire(key string) (func(), bool) {
	if l == nil {
		return func() {}, true
	}
	l.mu.Lock()
	if l.cur[key] >= l.max {
		l.mu.Unlock()
		l.rej.Add(1)
		return nil, false
	}
	l.cur[key]++
	l.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			if l.cur[key]--; l.cur[key] <= 0 {
				delete(l.cur, key)
			}
			l.mu.Unlock()
		})
	}, true
}

// Rejected returns the cumulative count of shed acquisitions. Nil-safe.
func (l *Limiter) Rejected() int64 {
	if l == nil {
		return 0
	}
	return l.rej.Load()
}
