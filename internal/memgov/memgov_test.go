package memgov

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestGrowShrinkLedger(t *testing.T) {
	g := New(1000)
	g.Grow("a", 300)
	g.Grow("b", 200)
	if got := g.Used(); got != 500 {
		t.Fatalf("used = %d, want 500", got)
	}
	if got := g.ClassBytes("a"); got != 300 {
		t.Fatalf("class a = %d, want 300", got)
	}
	g.Shrink("a", 100)
	if got, want := g.Used(), int64(400); got != want {
		t.Fatalf("used = %d, want %d", got, want)
	}
	// Shrink is exact, not clamped: an over-shrink goes negative so that a
	// revocation racing its own grant (Account.Settle ordering) nets to the
	// true total once the grant lands.
	g.Shrink("b", 500)
	if got := g.ClassBytes("b"); got != -300 {
		t.Fatalf("class b = %d, want -300 after over-shrink", got)
	}
	g.Grow("b", 300)
	if got := g.ClassBytes("b"); got != 0 {
		t.Fatalf("class b = %d, want 0 once the racing grant lands", got)
	}
	if got := g.Used(); got != 200 {
		t.Fatalf("used = %d, want 200", got)
	}
}

func TestAccountSettle(t *testing.T) {
	g := New(0)
	a := g.Account("cache")
	a.Settle(1, 100)
	if got := g.ClassBytes("cache"); got != 100 {
		t.Fatalf("class = %d after first settle, want 100", got)
	}
	a.Settle(2, 250)
	if got, held := g.ClassBytes("cache"), a.Held(); got != 250 || held != 250 {
		t.Fatalf("class/held = %d/%d, want 250/250", got, held)
	}
	// A release (gen 4) that lands before a stale build (gen 3) wins: the
	// stale settle is discarded, so the revocation sticks.
	a.Settle(4, 0)
	a.Settle(3, 999)
	if got := g.ClassBytes("cache"); got != 0 {
		t.Fatalf("class = %d after release-then-stale-build, want 0", got)
	}
	var nilAcct *Account
	nilAcct.Settle(1, 100)
	if nilAcct.Held() != 0 {
		t.Fatal("nil account must be inert")
	}
	if (*Governor)(nil).Account("x") != nil {
		t.Fatal("nil governor must yield a nil account")
	}
}

func TestNilGovernorIsNoop(t *testing.T) {
	var g *Governor
	g.Grow("a", 100)
	g.Shrink("a", 100)
	release, err := g.Admit("r", 1<<40)
	if err != nil {
		t.Fatalf("nil governor rejected admission: %v", err)
	}
	release()
	if g.Used() != 0 || g.Budget() != 0 || g.Peak() != 0 {
		t.Fatal("nil governor reported non-zero ledger")
	}
	var l *Limiter
	rel, ok := l.Acquire("t")
	if !ok {
		t.Fatal("nil limiter rejected acquire")
	}
	rel()
}

func TestAdmitRejectsOverBudget(t *testing.T) {
	g := New(1000)
	g.Grow("resident", 400)
	release, err := g.Admit(ClassRequests, 500)
	if err != nil {
		t.Fatalf("admit within budget failed: %v", err)
	}
	if _, err := g.Admit(ClassRequests, 200); err == nil {
		t.Fatal("admit past budget succeeded with no evictors")
	} else {
		var ob *ErrOverBudget
		if !errors.As(err, &ob) {
			t.Fatalf("error type = %T, want *ErrOverBudget", err)
		}
		if ob.RetryAfter <= 0 {
			t.Fatal("ErrOverBudget carries no Retry-After hint")
		}
	}
	release()
	if _, err := g.Admit(ClassRequests, 200); err != nil {
		t.Fatalf("admit after release failed: %v", err)
	}
	st := g.Stats()
	if st.Rejected != 1 || st.Admitted != 2 {
		t.Fatalf("stats admitted/rejected = %d/%d, want 2/1", st.Admitted, st.Rejected)
	}
}

func TestAdmitEvictsResidents(t *testing.T) {
	g := New(1000)
	resident := int64(800)
	g.Grow("cache", resident)
	g.RegisterEvictor("cache", func(need int64) int64 {
		freed := min(need, resident)
		resident -= freed
		g.Shrink("cache", freed)
		return freed
	})
	// 600 bytes need 400 reclaimed from the cache.
	release, err := g.Admit(ClassRequests, 600)
	if err != nil {
		t.Fatalf("admit with evictable residents failed: %v", err)
	}
	defer release()
	if got := g.ClassBytes("cache"); got != 400 {
		t.Fatalf("cache class = %d after eviction, want 400", got)
	}
	if used := g.Used(); used > g.Budget() {
		t.Fatalf("used %d exceeds budget %d after admit", used, g.Budget())
	}
	if st := g.Stats(); st.Reclaims == 0 || st.Reclaimed < 400 {
		t.Fatalf("reclaim stats = %+v, want >=1 reclaim freeing >=400", st)
	}
}

func TestGrowTriggersEvictionButNeverFails(t *testing.T) {
	g := New(1000)
	other := int64(700)
	g.RegisterEvictor("other", func(need int64) int64 {
		freed := min(need, other)
		other -= freed
		g.Shrink("other", freed)
		return freed
	})
	g.Grow("other", 700)
	// Growing a different class evicts "other" down to fit.
	g.Grow("mine", 600)
	if used := g.Used(); used > 1000 {
		t.Fatalf("used = %d after grow-with-eviction, want <= budget", used)
	}
	if got := g.ClassBytes("mine"); got != 600 {
		t.Fatalf("mine = %d, want 600 (growth is never refused)", got)
	}
	// A class's own grow skips its own evictor: grow "other" beyond budget
	// and the ledger overdraws instead of self-evicting mid-insert.
	g.Grow("other", 2000)
	if got := g.ClassBytes("other"); got < 2000 {
		t.Fatalf("other = %d, want >= 2000 (self-eviction must be skipped)", got)
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	g := New(0) // unlimited: ledger only
	g.Grow("a", 100)
	g.Grow("a", 400)
	g.Shrink("a", 450)
	g.Grow("a", 10)
	if got := g.Peak(); got != 500 {
		t.Fatalf("peak = %d, want 500", got)
	}
}

func TestLimiter(t *testing.T) {
	l := NewLimiter(2)
	r1, ok1 := l.Acquire("t")
	r2, ok2 := l.Acquire("t")
	if !ok1 || !ok2 {
		t.Fatal("first two acquisitions must succeed")
	}
	if _, ok := l.Acquire("t"); ok {
		t.Fatal("third concurrent acquisition must shed")
	}
	if _, ok := l.Acquire("u"); !ok {
		t.Fatal("limits are per key; another table must admit")
	}
	r1()
	r1() // double release is a no-op, not a double free
	if _, ok := l.Acquire("t"); !ok {
		t.Fatal("release must reopen the slot")
	}
	r2()
	if got := l.Rejected(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if NewLimiter(0) != nil {
		t.Fatal("non-positive max must build the unlimited (nil) limiter")
	}
}

// TestConcurrentLedgerInvariant hammers Grow/Shrink/Admit from many
// goroutines and asserts the ledger never exceeds the budget once
// admission control is the only source of growth — the loadgen acceptance
// invariant in miniature.
func TestConcurrentLedgerInvariant(t *testing.T) {
	const budget = 1 << 20
	g := New(budget)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				release, err := g.Admit(ClassRequests, int64(1024*(w+1)))
				if err != nil {
					continue
				}
				if used := g.Used(); used > budget {
					t.Errorf("used %d exceeded budget %d", used, budget)
				}
				release()
			}
		}(w)
	}
	wg.Wait()
	if g.Used() != 0 {
		t.Fatalf("used = %d after all releases, want 0", g.Used())
	}
	if g.Peak() > budget {
		t.Fatalf("peak %d exceeded budget %d", g.Peak(), budget)
	}
}

// TestConcurrentGrowEvict races resident growth against an evictor that
// drains a shared pool, checking the accounting converges and no counter
// goes negative.
func TestConcurrentGrowEvict(t *testing.T) {
	g := New(64 << 10)
	var mu sync.Mutex
	pool := int64(0)
	g.RegisterEvictor("pool", func(need int64) int64 {
		mu.Lock()
		freed := min(need, pool)
		pool -= freed
		mu.Unlock()
		g.Shrink("pool", freed)
		return freed
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				mu.Lock()
				pool += 512
				mu.Unlock()
				g.Grow("pool", 512)
				if release, err := g.Admit(ClassRequests, 4096); err == nil {
					release()
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	want := pool
	mu.Unlock()
	if got := g.ClassBytes("pool"); got != want {
		t.Fatalf("pool class = %d, evictor-tracked pool = %d", got, want)
	}
	if g.ClassBytes(ClassRequests) != 0 {
		t.Fatalf("requests class = %d after all releases, want 0", g.ClassBytes(ClassRequests))
	}
}

func TestErrOverBudgetMessage(t *testing.T) {
	err := &ErrOverBudget{Need: 10, Budget: 5, Used: 4}
	if msg := err.Error(); !strings.Contains(msg, "10") || !strings.Contains(msg, "5") {
		t.Fatalf("unhelpful error message: %q", msg)
	}
}
