package eda

import (
	"testing"

	"subtab/internal/binning"
	"subtab/internal/datagen"
	"subtab/internal/query"
	"subtab/internal/table"
)

func testDataset(t *testing.T) (*datagen.Dataset, *binning.Binned) {
	t.Helper()
	ds := datagen.Cyber(1500, 1)
	b, err := binning.Bin(ds.T, binning.Options{MaxBins: 5, Strategy: binning.Quantile, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestGenerateShape(t *testing.T) {
	ds, _ := testDataset(t)
	sessions := Generate(ds, GenOptions{Sessions: 10, MinSteps: 3, MaxSteps: 5, Seed: 2})
	if len(sessions) != 10 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	for _, s := range sessions {
		if len(s) < 3 || len(s) > 5 {
			t.Fatalf("session length = %d", len(s))
		}
		for _, step := range s {
			if step.Q == nil {
				t.Fatal("nil query")
			}
			if len(step.Fragments) == 0 {
				t.Fatal("step without fragments")
			}
			for _, f := range step.Fragments {
				if ds.T.Column(f.Col) == nil {
					t.Fatalf("fragment references unknown column %q", f.Col)
				}
			}
		}
	}
}

func TestGenerateDefault122(t *testing.T) {
	ds, _ := testDataset(t)
	sessions := Generate(ds, GenOptions{Seed: 3})
	if len(sessions) != 122 {
		t.Fatalf("default sessions = %d, want 122 (as in the paper)", len(sessions))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds, _ := testDataset(t)
	a := Generate(ds, GenOptions{Sessions: 5, Seed: 4})
	b := Generate(ds, GenOptions{Sessions: 5, Seed: 4})
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("session lengths differ")
		}
		for j := range a[i] {
			if a[i][j].Q.String() != b[i][j].Q.String() {
				t.Fatal("queries differ for same seed")
			}
		}
	}
}

func TestQueriesExecutable(t *testing.T) {
	ds, _ := testDataset(t)
	sessions := Generate(ds, GenOptions{Sessions: 20, Seed: 5})
	executed, nonEmpty := 0, 0
	for _, s := range sessions {
		for _, step := range s {
			res, _, err := step.Q.Apply(ds.T)
			if err != nil {
				t.Fatalf("query %s failed: %v", step.Q, err)
			}
			executed++
			if res.NumRows() > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty < executed/2 {
		t.Fatalf("only %d/%d queries returned rows", nonEmpty, executed)
	}
}

func TestCapturedColumnOnly(t *testing.T) {
	_, b := testDataset(t)
	ci := b.T.ColumnIndex("service")
	f := Fragment{Col: "service"}
	if !Captured(b, []int{0, 1}, []int{ci}, f) {
		t.Fatal("column fragment with column shown should be captured")
	}
	other := b.T.ColumnIndex("hour")
	if Captured(b, []int{0, 1}, []int{other}, f) {
		t.Fatal("column fragment without column shown should not be captured")
	}
	if Captured(b, []int{0}, []int{ci}, Fragment{Col: "nope"}) {
		t.Fatal("unknown column should not be captured")
	}
}

func TestCapturedValue(t *testing.T) {
	_, b := testDataset(t)
	ci := b.T.ColumnIndex("attack_type")
	// Find a row with a brute_force attack.
	row := -1
	for r := 0; r < b.T.NumRows(); r++ {
		if b.T.Cell(r, "attack_type").Str == "brute_force" {
			row = r
			break
		}
	}
	if row < 0 {
		t.Fatal("no brute_force row")
	}
	f := Fragment{Col: "attack_type", HasValue: true, Str: "brute_force"}
	if !Captured(b, []int{row}, []int{ci}, f) {
		t.Fatal("value shown in sub-table should be captured")
	}
	// A row with a different attack type does not capture it.
	other := -1
	for r := 0; r < b.T.NumRows(); r++ {
		if b.T.Cell(r, "attack_type").Str == "none" {
			other = r
			break
		}
	}
	if Captured(b, []int{other}, []int{ci}, f) {
		t.Fatal("value not shown should not be captured")
	}
	// Unknown categorical value.
	if Captured(b, []int{row}, []int{ci}, Fragment{Col: "attack_type", HasValue: true, Str: "zzz"}) {
		t.Fatal("unknown value should not be captured")
	}
}

func TestCapturedNumericBin(t *testing.T) {
	_, b := testDataset(t)
	ci := b.T.ColumnIndex("duration")
	dur := b.T.Column("duration")
	f := Fragment{Col: "duration", HasValue: true, Num: dur.Nums[0]}
	if !Captured(b, []int{0}, []int{ci}, f) {
		t.Fatal("same-bin numeric value should be captured")
	}
}

func TestReplayRates(t *testing.T) {
	ds, b := testDataset(t)
	sessions := Generate(ds, GenOptions{Sessions: 10, Seed: 6})

	// A selector showing everything captures every resolvable fragment.
	allCols := make([]int, b.NumCols())
	for i := range allCols {
		allCols[i] = i
	}
	full := Replay(b, sessions, func(q *query.Query) ([]int, []int, error) {
		rows, _ := q.MatchingRows(ds.T)
		return rows, allCols, nil
	})
	if full.Fragments == 0 {
		t.Fatal("no fragments replayed")
	}
	if full.Rate() < 60 {
		t.Fatalf("full-table capture rate = %v%%, expected high", full.Rate())
	}

	// A selector showing nothing captures nothing.
	none := Replay(b, sessions, func(q *query.Query) ([]int, []int, error) {
		return []int{0}, nil, nil
	})
	if none.Captured != 0 {
		t.Fatalf("empty selector captured %d", none.Captured)
	}

	// Narrow selector sits in between.
	narrow := Replay(b, sessions, func(q *query.Query) ([]int, []int, error) {
		rows, _ := q.MatchingRows(ds.T)
		if len(rows) > 3 {
			rows = rows[:3]
		}
		return rows, allCols[:3], nil
	})
	if narrow.Rate() > full.Rate() {
		t.Fatalf("narrow (%v%%) should not beat full (%v%%)", narrow.Rate(), full.Rate())
	}
}

func TestReplaySkipsFailingQueries(t *testing.T) {
	ds, b := testDataset(t)
	sessions := Generate(ds, GenOptions{Sessions: 3, Seed: 7})
	res := Replay(b, sessions, func(q *query.Query) ([]int, []int, error) {
		return nil, nil, nil // selector yields no rows: all skipped
	})
	if res.Fragments != 0 || res.Captured != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Rate() != 0 {
		t.Fatal("rate of zero fragments should be 0")
	}
}

func TestPredicateForMissing(t *testing.T) {
	tab := table.New("t")
	if err := tab.AddColumn(table.NewNumeric("x", []float64{1})); err != nil {
		t.Fatal(err)
	}
	p := predicateFor(tab, "x", table.Value{Missing: true})
	if p.Op != query.IsMissing {
		t.Fatalf("op = %v", p.Op)
	}
	p = predicateFor(tab, "x", table.Value{Kind: table.Numeric, Num: -5})
	if p.Op != query.Leq {
		t.Fatalf("op = %v", p.Op)
	}
}
