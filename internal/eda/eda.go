// Package eda models exploratory-data-analysis sessions for the paper's
// simulation-based study (§6.2.2, Figure 6). The paper replays 122 real
// sessions over the cyber-security dataset [Milo & Somech, KDD'18]; those
// logs are a data gate, so this package *generates* sessions with the same
// structure (sequences of select / project / group-by / sort steps) whose
// parameters follow the data's genuine patterns with noise — an analyst
// chasing signals. The generator never looks at any sub-table, so there is
// no circularity in the capture measurement.
//
// The replayed metric is the paper's: for each step, build a sub-table of
// the current query's result, then check which *fragments* of the next
// query (referenced columns, selection terms) appear in that sub-table.
package eda

import (
	"math/rand"

	"subtab/internal/binning"
	"subtab/internal/datagen"
	"subtab/internal/query"
	"subtab/internal/table"
)

// Fragment is a piece of a query that may or may not be visible in a
// sub-table: a referenced column, optionally with a selection value.
type Fragment struct {
	Col      string
	HasValue bool
	Num      float64 // value for numeric columns
	Str      string  // value for categorical columns
}

// Step is one exploratory query plus its fragments.
type Step struct {
	Q         *query.Query
	Fragments []Fragment
}

// Session is a sequence of exploratory steps.
type Session []Step

// GenOptions configures session generation.
type GenOptions struct {
	// Sessions is the number of sessions (paper: 122).
	Sessions int
	// MinSteps/MaxSteps bound session length (defaults 4 and 8).
	MinSteps, MaxSteps int
	// PatternBias is the probability that a step's parameters are drawn
	// from the dataset's planted patterns rather than uniformly (default
	// 0.7): analysts mostly follow signals, sometimes wander.
	PatternBias float64
	Seed        int64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Sessions <= 0 {
		o.Sessions = 122
	}
	if o.MinSteps <= 0 {
		o.MinSteps = 4
	}
	if o.MaxSteps < o.MinSteps {
		o.MaxSteps = o.MinSteps + 4
	}
	if o.PatternBias <= 0 {
		o.PatternBias = 0.7
	}
	return o
}

// Generate produces EDA sessions over the dataset.
func Generate(ds *datagen.Dataset, opt GenOptions) []Session {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	t := ds.T

	// Pattern pool: (column, example value) pairs from rows exemplifying
	// planted rules; analysts biased toward these.
	type colVal struct {
		col string
		val table.Value
	}
	var pool []colVal
	for _, pr := range ds.Planted {
		found := 0
		for r := 0; r < t.NumRows() && found < 10; r++ {
			if !pr.Holds(t, r) {
				continue
			}
			found++
			for _, c := range pr.Cols {
				v := t.Cell(r, c)
				pool = append(pool, colVal{c, v})
			}
		}
	}
	names := t.ColumnNames()

	pickCol := func() string {
		if len(pool) > 0 && rng.Float64() < opt.PatternBias {
			return pool[rng.Intn(len(pool))].col
		}
		return names[rng.Intn(len(names))]
	}
	pickColVal := func() (string, table.Value) {
		if len(pool) > 0 && rng.Float64() < opt.PatternBias {
			cv := pool[rng.Intn(len(pool))]
			return cv.col, cv.val
		}
		c := names[rng.Intn(len(names))]
		r := rng.Intn(t.NumRows())
		return c, t.Cell(r, c)
	}

	sessions := make([]Session, opt.Sessions)
	for si := range sessions {
		steps := opt.MinSteps + rng.Intn(opt.MaxSteps-opt.MinSteps+1)
		sess := make(Session, 0, steps)
		for s := 0; s < steps; s++ {
			q := &query.Query{}
			var frags []Fragment
			switch rng.Intn(4) {
			case 0: // selection
				col, v := pickColVal()
				p := predicateFor(t, col, v)
				q.Where = []query.Predicate{p}
				frags = append(frags, fragmentFor(col, v))
			case 1: // projection
				nCols := 3 + rng.Intn(4)
				seen := map[string]bool{}
				for len(q.Select) < nCols {
					c := pickCol()
					if !seen[c] {
						seen[c] = true
						q.Select = append(q.Select, c)
						frags = append(frags, Fragment{Col: c})
					}
				}
			case 2: // group-by + aggregate
				col := pickCol()
				q.GroupBy = []string{col}
				q.Aggs = []query.Aggregate{{Func: query.Count}}
				frags = append(frags, Fragment{Col: col})
				// Occasionally also filter.
				if rng.Float64() < 0.4 {
					fcol, v := pickColVal()
					q.Where = []query.Predicate{predicateFor(t, fcol, v)}
					frags = append(frags, fragmentFor(fcol, v))
				}
			default: // sort
				col := pickCol()
				q.OrderBy = col
				q.Asc = rng.Intn(2) == 0
				frags = append(frags, Fragment{Col: col})
			}
			sess = append(sess, Step{Q: q, Fragments: frags})
		}
		sessions[si] = sess
	}
	return sessions
}

// predicateFor builds a sensible predicate matching the value: equality for
// categorical values, a >= or <= comparison for numeric values, IS NULL for
// missing ones.
func predicateFor(t *table.Table, col string, v table.Value) query.Predicate {
	if v.Missing {
		return query.Predicate{Col: col, Op: query.IsMissing}
	}
	if v.Kind == table.Categorical {
		return query.Predicate{Col: col, Op: query.Eq, Str: v.Str}
	}
	// Numeric: half-open comparisons read more like real exploration than
	// point equality.
	if v.Num >= 0 {
		return query.Predicate{Col: col, Op: query.Geq, Num: v.Num}
	}
	return query.Predicate{Col: col, Op: query.Leq, Num: v.Num}
}

func fragmentFor(col string, v table.Value) Fragment {
	f := Fragment{Col: col, HasValue: !v.Missing}
	if v.Kind == table.Categorical {
		f.Str = v.Str
	} else {
		f.Num = v.Num
	}
	return f
}

// Captured reports whether the fragment is visible in the sub-table given
// by source rows and column indices: the column must be displayed, and a
// valued fragment additionally needs some displayed row whose cell falls in
// the same bin as the value.
func Captured(b *binning.Binned, rows []int, cols []int, f Fragment) bool {
	ci := b.T.ColumnIndex(f.Col)
	if ci < 0 {
		return false
	}
	shown := false
	for _, c := range cols {
		if c == ci {
			shown = true
			break
		}
	}
	if !shown {
		return false
	}
	if !f.HasValue {
		return true
	}
	// Bin of the fragment value.
	cb := &b.Cols[ci]
	var bin int
	if cb.Kind == table.Numeric {
		bin = cb.BinOfNum(f.Num)
	} else {
		code, ok := b.T.ColumnAt(ci).Dict.Lookup(f.Str)
		if !ok {
			return false
		}
		bin = cb.BinOfCat(code)
	}
	for _, r := range rows {
		if int(b.Code(ci, r)) == bin {
			return true
		}
	}
	return false
}

// Selector produces a sub-table (source rows + column indices) for a query
// result; the replay drives one per algorithm.
type Selector func(q *query.Query) (rows []int, cols []int, err error)

// ReplayResult aggregates fragment capture over sessions.
type ReplayResult struct {
	Fragments int
	Captured  int
}

// Rate returns the captured percentage in [0, 100].
func (r ReplayResult) Rate() float64 {
	if r.Fragments == 0 {
		return 0
	}
	return 100 * float64(r.Captured) / float64(r.Fragments)
}

// Replay walks each session; at step i it builds the sub-table of step i's
// query result via sel, then checks which fragments of step i+1 appear in
// it (the paper's §6.2.2 protocol). Steps whose queries fail or return no
// rows are skipped.
func Replay(b *binning.Binned, sessions []Session, sel Selector) ReplayResult {
	var out ReplayResult
	for _, sess := range sessions {
		for i := 0; i+1 < len(sess); i++ {
			rows, cols, err := sel(sess[i].Q)
			if err != nil || len(rows) == 0 {
				continue
			}
			for _, f := range sess[i+1].Fragments {
				out.Fragments++
				if Captured(b, rows, cols, f) {
					out.Captured++
				}
			}
		}
	}
	return out
}
