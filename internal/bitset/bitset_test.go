package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
}

func TestNewNegativeCapacity(t *testing.T) {
	s := New(-5)
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) = true after Remove")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(100)
	if !s.Empty() {
		t.Fatal("out-of-range Add should be ignored")
	}
	if s.Contains(-1) || s.Contains(10) {
		t.Fatal("out-of-range Contains should be false")
	}
	s.Remove(-1) // must not panic
	s.Remove(99)
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(10, []int{1, 3, 3, 5, 11, -2})
	want := []int{1, 3, 5}
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Count after Fill = %d", n, s.Count())
		}
	}
}

func TestClear(t *testing.T) {
	s := New(70)
	s.Fill()
	s.Clear()
	if !s.Empty() {
		t.Fatal("set should be empty after Clear")
	}
	if s.Len() != 70 {
		t.Fatal("Clear must preserve capacity")
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := FromIndices(130, []int{1, 2, 3, 64, 65, 129})
	b := FromIndices(130, []int{2, 3, 4, 65, 128})

	and := a.Clone()
	and.And(b)
	if got, want := and.String(), "{2, 3, 65}"; got != want {
		t.Fatalf("And = %s, want %s", got, want)
	}

	or := a.Clone()
	or.Or(b)
	if or.Count() != 8 {
		t.Fatalf("Or count = %d, want 8", or.Count())
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got, want := diff.String(), "{1, 64, 129}"; got != want {
		t.Fatalf("AndNot = %s, want %s", got, want)
	}
}

func TestAndCountIntersects(t *testing.T) {
	a := FromIndices(200, []int{0, 50, 100, 150, 199})
	b := FromIndices(200, []int{50, 150, 180})
	if got := a.AndCount(b); got != 2 {
		t.Fatalf("AndCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	c := FromIndices(200, []int{1, 2, 3})
	if a.Intersects(c) {
		t.Fatal("Intersects = true, want false")
	}
}

func TestIntersectUnionFunctions(t *testing.T) {
	a := FromIndices(64, []int{1, 2, 3})
	b := FromIndices(64, []int{3, 4})
	i := Intersect(a, b)
	u := Union(a, b)
	if i.Count() != 1 || !i.Contains(3) {
		t.Fatalf("Intersect = %s", i)
	}
	if u.Count() != 4 {
		t.Fatalf("Union = %s", u)
	}
	// Inputs untouched.
	if a.Count() != 3 || b.Count() != 2 {
		t.Fatal("Intersect/Union must not mutate inputs")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	a := New(10)
	b := New(11)
	a.And(b)
}

func TestEqual(t *testing.T) {
	a := FromIndices(100, []int{5, 10})
	b := FromIndices(100, []int{5, 10})
	c := FromIndices(100, []int{5, 11})
	d := FromIndices(101, []int{5, 10})
	if !a.Equal(b) {
		t.Fatal("a should equal b")
	}
	if a.Equal(c) {
		t.Fatal("a should not equal c")
	}
	if a.Equal(d) {
		t.Fatal("different capacities are never equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(64, []int{1})
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("mutating clone must not affect original")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(100, []int{10, 20, 30, 40})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 20 {
		t.Fatalf("ForEach early stop saw %v", seen)
	}
}

func TestNextSet(t *testing.T) {
	s := FromIndices(200, []int{3, 64, 130})
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, -1}, {-5, 3}, {500, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestStringEmpty(t *testing.T) {
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
}

// Property: Count equals length of Indices, and Indices are sorted members.
func TestPropCountMatchesIndices(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		for _, r := range raw {
			s.Add(int(r))
		}
		idx := s.Indices()
		if len(idx) != s.Count() {
			return false
		}
		for i, v := range idx {
			if !s.Contains(v) {
				return false
			}
			if i > 0 && idx[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish law |A∪B| = |A| + |B| - |A∩B|.
func TestPropInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return Union(a, b).Count() == a.Count()+b.Count()-a.AndCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: AndNot(b) then Or(b∩a) restores a∩-part consistency: (a\b)∪(a∩b) = a.
func TestPropSplitRecombine(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		diff := a.Clone()
		diff.AndNot(b)
		inter := Intersect(a, b)
		return Union(diff, inter).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	s := New(n)
	ref := map[int]bool{}
	for op := 0; op < 5000; op++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(i)
			ref[i] = true
		case 1:
			s.Remove(i)
			delete(ref, i)
		case 2:
			if s.Contains(i) != ref[i] {
				t.Fatalf("op %d: Contains(%d) mismatch", op, i)
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("final Count = %d, want %d", s.Count(), len(ref))
	}
}

func BenchmarkAndCount(b *testing.B) {
	x := New(1 << 20)
	y := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 1<<20; i += 7 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}
