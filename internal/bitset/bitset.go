// Package bitset provides a dense, fixed-capacity bitset used throughout the
// rule miner and the cell-coverage metric. Rule tuple-sets and per-column
// covered-cell sets are bitsets over row indices, so support counting and
// coverage aggregation reduce to word-wise AND/OR plus popcounts.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over [0, Len()). The zero value is an empty set of
// capacity zero; use New to create one with capacity.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set of capacity n with the given bits set.
// Indices out of [0,n) are ignored.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		if i >= 0 && i < n {
			s.Add(i)
		}
	}
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Add sets bit i. Out-of-range indices are ignored.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Clear resets all bits to zero, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit in [0, Len()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes bits at positions >= n in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

// And sets s = s ∩ o. Panics if capacities differ.
func (s *Set) And(o *Set) {
	s.check(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// Or sets s = s ∪ o. Panics if capacities differ.
func (s *Set) Or(o *Set) {
	s.check(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// AndNot sets s = s \ o. Panics if capacities differ.
func (s *Set) AndNot(o *Set) {
	s.check(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// AndCount returns |s ∩ o| without allocating. Panics if capacities differ.
func (s *Set) AndCount(o *Set) int {
	s.check(o)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// Intersects reports whether s ∩ o is non-empty. Panics if capacities differ.
func (s *Set) Intersects(o *Set) bool {
	s.check(o)
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Intersect returns a new set s ∩ o. Panics if capacities differ.
func Intersect(a, b *Set) *Set {
	a.check(b)
	c := a.Clone()
	c.And(b)
	return c
}

// Union returns a new set a ∪ b. Panics if capacities differ.
func Union(a, b *Set) *Set {
	a.check(b)
	c := a.Clone()
	c.Or(b)
	return c
}

// Equal reports whether the two sets have identical capacity and contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of all set bits in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls fn for each set bit in increasing order; returning false stops
// the iteration early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as a sorted index list, e.g. "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}
