package datagen

import (
	"testing"

	"subtab/internal/binning"
	"subtab/internal/rules"
	"subtab/internal/table"
)

func TestByNameAll(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, 500, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.T.NumRows() != 500 {
			t.Fatalf("%s: rows = %d", name, ds.T.NumRows())
		}
		if len(ds.Planted) == 0 {
			t.Fatalf("%s: no planted rules", name)
		}
		if len(ds.Targets) == 0 {
			t.Fatalf("%s: no target columns", name)
		}
		for _, tc := range ds.Targets {
			if ds.T.Column(tc) == nil {
				t.Fatalf("%s: target %q missing", name, tc)
			}
		}
		for _, pr := range ds.Planted {
			for _, c := range pr.Cols {
				if ds.T.Column(c) == nil {
					t.Fatalf("%s: planted rule references missing column %q", name, c)
				}
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("XX", 10, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestByNameDefaultRows(t *testing.T) {
	ds, err := ByName("CY", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.T.NumRows() != DefaultRows("CY") {
		t.Fatalf("rows = %d", ds.T.NumRows())
	}
}

func TestColumnCountsMatchPaper(t *testing.T) {
	cases := map[string]int{"FL": 31, "CY": 15, "SP": 15, "CC": 31, "USF": 298, "BL": 19}
	for name, want := range cases {
		ds, err := ByName(name, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := ds.T.NumCols(); got != want {
			t.Errorf("%s: %d columns, paper has %d", name, got, want)
		}
	}
}

func TestFlightsNaNStructure(t *testing.T) {
	ds := Flights(3000, 2)
	canc := ds.T.Column("CANCELLED")
	dep := ds.T.Column("DEPARTURE_TIME")
	air := ds.T.Column("AIR_TIME")
	nCancelled := 0
	for r := 0; r < ds.T.NumRows(); r++ {
		if canc.Nums[r] == 1 {
			nCancelled++
			if !dep.Missing(r) || !air.Missing(r) {
				t.Fatalf("row %d cancelled but has in-flight data", r)
			}
		} else if dep.Missing(r) {
			t.Fatalf("row %d not cancelled but missing departure time", r)
		}
	}
	if nCancelled < 50 {
		t.Fatalf("too few cancellations: %d", nCancelled)
	}
}

func TestFlightsPlantedRulesHold(t *testing.T) {
	ds := Flights(5000, 3)
	// Long flights almost never cancelled.
	longTotal, longCancelled := 0, 0
	shortAftTotal, shortAftCancelled := 0, 0
	for r := 0; r < ds.T.NumRows(); r++ {
		d := ds.T.Column("DISTANCE").Nums[r]
		s := ds.T.Column("SCHEDULED_DEPARTURE").Nums[r]
		c := ds.T.Column("CANCELLED").Nums[r]
		if d >= 1600 {
			longTotal++
			if c == 1 {
				longCancelled++
			}
		}
		if d < 500 && s >= 1230 && s < 1630 {
			shortAftTotal++
			if c == 1 {
				shortAftCancelled++
			}
		}
	}
	if longTotal == 0 || shortAftTotal == 0 {
		t.Fatal("regimes not populated")
	}
	longRate := float64(longCancelled) / float64(longTotal)
	shortRate := float64(shortAftCancelled) / float64(shortAftTotal)
	if longRate > 0.05 {
		t.Fatalf("long-flight cancellation rate = %v", longRate)
	}
	if shortRate < 0.4 {
		t.Fatalf("short-afternoon cancellation rate = %v", shortRate)
	}
}

func TestPlantedRulesPopulated(t *testing.T) {
	// Every planted rule must hold for a meaningful share of rows.
	for _, name := range Names() {
		ds, err := ByName(name, 2000, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range ds.Planted {
			count := 0
			for r := 0; r < ds.T.NumRows(); r++ {
				if pr.Holds(ds.T, r) {
					count++
				}
			}
			if count < 20 {
				t.Errorf("%s: planted rule %q holds for only %d/%d rows", name, pr.Description, count, ds.T.NumRows())
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Cyber(200, 7)
	b := Cyber(200, 7)
	for c := 0; c < a.T.NumCols(); c++ {
		for r := 0; r < 200; r++ {
			va, vb := a.T.CellAt(r, c), b.T.CellAt(r, c)
			if va.String() != vb.String() {
				t.Fatalf("col %d row %d: %v != %v", c, r, va, vb)
			}
		}
	}
	c := Cyber(200, 8)
	same := true
	for r := 0; r < 200 && same; r++ {
		if a.T.CellAt(r, 0).String() != c.T.CellAt(r, 0).String() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

// The generators must produce tables whose planted patterns are minable as
// association rules with the paper's default thresholds.
func TestMinablePatterns(t *testing.T) {
	for _, name := range []string{"FL", "CY", "SP", "BL"} {
		ds, err := ByName(name, 3000, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := binning.Bin(ds.T, binning.Options{MaxBins: 5, Strategy: binning.Quantile, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := rules.Mine(b, rules.Options{MinSupport: 0.1, MinConfidence: 0.6, MinRuleSize: 2, MaxItemsetSize: 3, MaxRules: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) == 0 {
			t.Errorf("%s: no rules minable at paper thresholds", name)
		}
	}
}

func TestGeneric(t *testing.T) {
	ds := Generic(500, 9, 4, 6)
	if ds.T.NumRows() != 500 || ds.T.NumCols() != 9 {
		t.Fatalf("dims = %dx%d", ds.T.NumRows(), ds.T.NumCols())
	}
	if len(ds.Planted) != 4 {
		t.Fatalf("planted = %d", len(ds.Planted))
	}
	// Pattern rows hold their own rule and not others'.
	for r := 0; r < 50; r++ {
		holds := 0
		for _, pr := range ds.Planted {
			if pr.Holds(ds.T, r) {
				holds++
			}
		}
		if holds != 1 {
			t.Fatalf("row %d holds %d patterns, want 1", r, holds)
		}
	}
}

func TestGenericDegenerateArgs(t *testing.T) {
	ds := Generic(50, 1, 0, 1)
	if ds.T.NumCols() < 3 {
		t.Fatal("minimum columns not enforced")
	}
	if len(ds.Planted) != 1 {
		t.Fatalf("planted = %d", len(ds.Planted))
	}
}

func TestCSVRoundTripDataset(t *testing.T) {
	ds := Spotify(100, 9)
	dir := t.TempDir()
	path := dir + "/sp.csv"
	if err := ds.T.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := table.ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 100 || back.NumCols() != ds.T.NumCols() {
		t.Fatalf("round-trip dims %dx%d", back.NumRows(), back.NumCols())
	}
}
