// Package datagen generates the synthetic stand-ins for the paper's six
// evaluation datasets (Kaggle Flights, honeynet Cyber-security, Spotify,
// Credit-card fraud, US Mutual Funds, Bank Loans). The real datasets are a
// data gate for this offline reproduction, so each generator reproduces the
// schema (column names, kinds, missing-value structure) and *plants*
// association rules of paper-typical support and confidence, plus noise
// columns. All of the paper's evaluation claims are relative claims about
// algorithms run on rule-rich tables, which these generators exercise by
// construction (see DESIGN.md §4).
//
// Every generator also reports its planted patterns as ground truth for the
// simulated user study (package study) and the EDA-session simulation
// (package eda).
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"subtab/internal/table"
)

// PlantedRule is a ground-truth pattern baked into a generated dataset.
type PlantedRule struct {
	// Description is the human-readable insight, e.g. "long flights are
	// almost never cancelled".
	Description string
	// Cols are the columns a user must see to derive the insight.
	Cols []string
	// Holds reports whether row r of the table exemplifies the pattern.
	Holds func(t *table.Table, r int) bool
}

// Dataset is a generated table plus its ground truth.
type Dataset struct {
	Name    string
	T       *table.Table
	Planted []PlantedRule
	// Targets are the dataset's natural target columns (e.g. CANCELLED).
	Targets []string
}

// DefaultRows returns the default (scaled-down) row count for each dataset:
// the paper's row counts shrunk to laptop scale while preserving the
// relative ordering FL > CC > SP > CY.
func DefaultRows(name string) int {
	switch name {
	case "FL":
		return 60_000
	case "CC":
		return 25_000
	case "SP":
		return 12_000
	case "CY":
		return 10_000
	case "USF":
		return 4_000
	case "BL":
		return 12_000
	default:
		return 10_000
	}
}

// ByName generates a dataset by its paper abbreviation (FL, CY, SP, CC,
// USF, BL). n <= 0 uses DefaultRows.
func ByName(name string, n int, seed int64) (*Dataset, error) {
	if n <= 0 {
		n = DefaultRows(name)
	}
	switch name {
	case "FL":
		return Flights(n, seed), nil
	case "CY":
		return Cyber(n, seed), nil
	case "SP":
		return Spotify(n, seed), nil
	case "CC":
		return CreditCard(n, seed), nil
	case "USF":
		return USFunds(n, seed), nil
	case "BL":
		return BankLoans(n, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// Names lists the generatable datasets.
func Names() []string { return []string{"FL", "CY", "SP", "CC", "USF", "BL"} }

func mustAdd(t *table.Table, c *table.Column) {
	if err := t.AddColumn(c); err != nil {
		panic(err) // generator bug: duplicate name or length mismatch
	}
}

// Flights generates the FL stand-in: the Kaggle flight-delays schema
// (31 columns) with the paper's running-example patterns planted:
//
//   - long AIR_TIME and long DISTANCE flights are almost never cancelled;
//   - short afternoon flights are frequently cancelled;
//   - cancelled flights have NaN in the in-flight and delay columns
//     (exactly the missing-structure the paper's Figure 1 shows);
//   - winter months carry weather delays.
func Flights(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	airlines := []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "VX"}
	airports := []string{"ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO", "BOS", "PHX"}

	year := make([]float64, n)
	month := make([]float64, n)
	day := make([]float64, n)
	dow := make([]float64, n)
	airline := make([]string, n)
	flightNum := make([]float64, n)
	tailNum := make([]string, n)
	origin := make([]string, n)
	dest := make([]string, n)
	schedDep := make([]float64, n)
	depTime := make([]float64, n)
	depDelay := make([]float64, n)
	taxiOut := make([]float64, n)
	wheelsOff := make([]float64, n)
	schedTime := make([]float64, n)
	elapsed := make([]float64, n)
	airTime := make([]float64, n)
	distance := make([]float64, n)
	wheelsOn := make([]float64, n)
	taxiIn := make([]float64, n)
	schedArr := make([]float64, n)
	arrTime := make([]float64, n)
	arrDelay := make([]float64, n)
	diverted := make([]float64, n)
	cancelled := make([]float64, n)
	cancReason := make([]string, n)
	airSysDelay := make([]float64, n)
	secDelay := make([]float64, n)
	airlineDelay := make([]float64, n)
	lateAcDelay := make([]float64, n)
	weatherDelay := make([]float64, n)

	nan := math.NaN()
	for i := 0; i < n; i++ {
		year[i] = 2015
		month[i] = float64(1 + rng.Intn(12))
		day[i] = float64(1 + rng.Intn(28))
		dow[i] = float64(1 + rng.Intn(7))
		airline[i] = airlines[rng.Intn(len(airlines))]
		flightNum[i] = float64(1 + rng.Intn(6000))
		tailNum[i] = fmt.Sprintf("N%d", 100+rng.Intn(900))
		origin[i] = airports[rng.Intn(len(airports))]
		dest[i] = airports[rng.Intn(len(airports))]

		// Distance regime: short / medium / long, with gaps between the
		// ranges so KDE binning recovers the regimes as bins (real route
		// networks are similarly multi-modal). The whole duration family
		// (AIR_TIME, SCHEDULED_TIME, ELAPSED_TIME) is regime-determined.
		var dist, at float64
		switch rng.Intn(3) {
		case 0: // short hops
			dist = 150 + rng.Float64()*300
			at = 35 + rng.Float64()*30
		case 1: // medium
			dist = 700 + rng.Float64()*400
			at = 110 + rng.Float64()*50
		default: // long haul
			dist = 1600 + rng.Float64()*800
			at = 220 + rng.Float64()*90
		}
		distance[i] = math.Round(dist)

		// Departure slot regime: morning / afternoon / evening (gapped).
		slot := rng.Intn(3)
		switch slot {
		case 0:
			schedDep[i] = float64(500 + rng.Intn(400)) // 05:00-08:59
		case 1:
			schedDep[i] = float64(1230 + rng.Intn(400)) // 12:30-16:29
		default:
			schedDep[i] = float64(1830 + rng.Intn(330)) // 18:30-21:59
		}

		// Cancellation model (the planted rules):
		//   long flights    -> ~1% cancelled
		//   short afternoon -> ~45% cancelled
		//   otherwise       -> ~5% cancelled
		// Overall rate ≈ 8.5%, deliberately below the default 10% mining
		// support: cancellation rules surface under target-column mining
		// (the user-study setting) rather than flooding global mining.
		pCancel := 0.05
		if dist >= 1600 {
			pCancel = 0.01
		} else if dist < 500 && slot == 1 {
			pCancel = 0.45
		}
		isCancelled := rng.Float64() < pCancel
		winter := month[i] == 12 || month[i] <= 2

		schedTime[i] = math.Round(at + 32 + rng.Float64()*6)
		schedArr[i] = math.Round(math.Mod(schedDep[i]+schedTime[i]*1.7, 2400))

		if isCancelled {
			cancelled[i] = 1
			// The paper's NaN structure: no in-flight data for cancelled rows.
			depTime[i], depDelay[i], taxiOut[i], wheelsOff[i] = nan, nan, nan, nan
			elapsed[i], airTime[i], wheelsOn[i], taxiIn[i] = nan, nan, nan, nan
			arrTime[i], arrDelay[i] = nan, nan
			diverted[i] = 0
			if winter {
				cancReason[i] = "B" // weather
			} else {
				cancReason[i] = []string{"A", "C"}[rng.Intn(2)]
			}
			airSysDelay[i], secDelay[i], airlineDelay[i], lateAcDelay[i], weatherDelay[i] = nan, nan, nan, nan, nan
			continue
		}
		cancelled[i] = 0
		cancReason[i] = ""

		// Delay regime: on-time vs delayed; winter and airline NK drive
		// delays (the MONTH/WEATHER_DELAY and AIRLINE planted rules).
		pDelay := 0.12
		if winter {
			pDelay = 0.65
		}
		if airline[i] == "NK" {
			pDelay += 0.35
		}
		var dd float64
		if rng.Float64() < pDelay {
			dd = 35 + rng.Float64()*60 // clearly delayed
		} else {
			dd = -8 + rng.Float64()*14 // on time
		}
		depDelay[i] = math.Round(dd)
		depTime[i] = math.Round(math.Mod(schedDep[i]+math.Max(dd, 0)+2400, 2400))
		taxiOut[i] = math.Round(8 + rng.Float64()*18)
		wheelsOff[i] = math.Round(math.Mod(depTime[i]+taxiOut[i], 2400))
		airTime[i] = math.Round(at)
		taxiIn[i] = math.Round(3 + rng.Float64()*12)
		elapsed[i] = math.Round(taxiOut[i] + airTime[i] + taxiIn[i])
		wheelsOn[i] = math.Round(math.Mod(wheelsOff[i]+airTime[i], 2400))
		arrTime[i] = math.Round(math.Mod(wheelsOn[i]+taxiIn[i], 2400))
		ad := dd + rng.NormFloat64()*6
		arrDelay[i] = math.Round(ad)
		diverted[i] = 0
		if rng.Float64() < 0.002 {
			diverted[i] = 1
		}
		// Delay-attribution columns exist only for late flights (> 15 min).
		if ad > 15 {
			airSysDelay[i] = math.Max(0, math.Round(rng.Float64()*ad*0.3))
			secDelay[i] = 0
			airlineDelay[i] = math.Max(0, math.Round(rng.Float64()*ad*0.4))
			lateAcDelay[i] = math.Max(0, math.Round(ad-airSysDelay[i]-airlineDelay[i]))
			if winter {
				weatherDelay[i] = math.Round(math.Max(ad*0.5, 1))
			} else {
				weatherDelay[i] = 0
			}
		} else {
			airSysDelay[i], secDelay[i], airlineDelay[i], lateAcDelay[i], weatherDelay[i] = nan, nan, nan, nan, nan
		}
	}

	t := table.New("FL")
	mustAdd(t, table.NewNumeric("YEAR", year))
	mustAdd(t, table.NewNumeric("MONTH", month))
	mustAdd(t, table.NewNumeric("DAY", day))
	mustAdd(t, table.NewNumeric("DAY_OF_WEEK", dow))
	mustAdd(t, table.NewCategorical("AIRLINE", airline))
	mustAdd(t, table.NewNumeric("FLIGHT_NUMBER", flightNum))
	mustAdd(t, table.NewCategorical("TAIL_NUMBER", tailNum))
	mustAdd(t, table.NewCategorical("ORIGIN_AIRPORT", origin))
	mustAdd(t, table.NewCategorical("DESTINATION_AIRPORT", dest))
	mustAdd(t, table.NewNumeric("SCHEDULED_DEPARTURE", schedDep))
	mustAdd(t, table.NewNumeric("DEPARTURE_TIME", depTime))
	mustAdd(t, table.NewNumeric("DEPARTURE_DELAY", depDelay))
	mustAdd(t, table.NewNumeric("TAXI_OUT", taxiOut))
	mustAdd(t, table.NewNumeric("WHEELS_OFF", wheelsOff))
	mustAdd(t, table.NewNumeric("SCHEDULED_TIME", schedTime))
	mustAdd(t, table.NewNumeric("ELAPSED_TIME", elapsed))
	mustAdd(t, table.NewNumeric("AIR_TIME", airTime))
	mustAdd(t, table.NewNumeric("DISTANCE", distance))
	mustAdd(t, table.NewNumeric("WHEELS_ON", wheelsOn))
	mustAdd(t, table.NewNumeric("TAXI_IN", taxiIn))
	mustAdd(t, table.NewNumeric("SCHEDULED_ARRIVAL", schedArr))
	mustAdd(t, table.NewNumeric("ARRIVAL_TIME", arrTime))
	mustAdd(t, table.NewNumeric("ARRIVAL_DELAY", arrDelay))
	mustAdd(t, table.NewNumeric("DIVERTED", diverted))
	mustAdd(t, table.NewNumeric("CANCELLED", cancelled))
	mustAdd(t, table.NewCategorical("CANCELLATION_REASON", cancReason))
	mustAdd(t, table.NewNumeric("AIR_SYSTEM_DELAY", airSysDelay))
	mustAdd(t, table.NewNumeric("SECURITY_DELAY", secDelay))
	mustAdd(t, table.NewNumeric("AIRLINE_DELAY", airlineDelay))
	mustAdd(t, table.NewNumeric("LATE_AIRCRAFT_DELAY", lateAcDelay))
	mustAdd(t, table.NewNumeric("WEATHER_DELAY", weatherDelay))

	planted := []PlantedRule{
		{
			Description: "long flights (high AIR_TIME, high DISTANCE) are almost never cancelled",
			Cols:        []string{"AIR_TIME", "DISTANCE", "CANCELLED"},
			Holds: func(t *table.Table, r int) bool {
				d := t.Column("DISTANCE").Nums[r]
				return d >= 1600 && t.Column("CANCELLED").Nums[r] == 0
			},
		},
		{
			Description: "short afternoon flights are frequently cancelled",
			Cols:        []string{"SCHEDULED_DEPARTURE", "DISTANCE", "CANCELLED"},
			Holds: func(t *table.Table, r int) bool {
				d := t.Column("DISTANCE").Nums[r]
				s := t.Column("SCHEDULED_DEPARTURE").Nums[r]
				return d < 500 && s >= 1230 && s < 1630 && t.Column("CANCELLED").Nums[r] == 1
			},
		},
		{
			Description: "cancelled flights have no departure time recorded (NaN)",
			Cols:        []string{"DEPARTURE_TIME", "CANCELLED"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("CANCELLED").Nums[r] == 1 && t.Column("DEPARTURE_TIME").Missing(r)
			},
		},
		{
			Description: "winter months carry weather delays",
			Cols:        []string{"MONTH", "WEATHER_DELAY"},
			Holds: func(t *table.Table, r int) bool {
				m := t.Column("MONTH").Nums[r]
				wd := t.Column("WEATHER_DELAY")
				return (m == 12 || m <= 2) && !wd.Missing(r) && wd.Nums[r] > 0
			},
		},
		{
			Description: "airline NK departs late",
			Cols:        []string{"AIRLINE", "DEPARTURE_DELAY"},
			Holds: func(t *table.Table, r int) bool {
				dd := t.Column("DEPARTURE_DELAY")
				return t.Cell(r, "AIRLINE").Str == "NK" && !dd.Missing(r) && dd.Nums[r] > 15
			},
		},
	}
	return &Dataset{Name: "FL", T: t, Planted: planted, Targets: []string{"CANCELLED"}}
}

// Cyber generates the CY stand-in: a honeypot-log-like table (15 columns)
// with planted attack patterns.
func Cyber(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	countries := []string{"CN", "RU", "US", "BR", "IN", "DE", "KR", "VN"}
	services := []string{"ssh", "http", "smtp", "ftp", "telnet", "rdp"}
	protocols := []string{"TCP", "UDP", "ICMP"}

	hour := make([]float64, n)
	srcClass := make([]string, n)
	country := make([]string, n)
	dstPort := make([]float64, n)
	protocol := make([]string, n)
	service := make([]string, n)
	attack := make([]string, n)
	severity := make([]string, n)
	bytesIn := make([]float64, n)
	bytesOut := make([]float64, n)
	duration := make([]float64, n)
	sessions := make([]float64, n)
	alerted := make([]float64, n)
	blocked := make([]float64, n)
	success := make([]float64, n)

	for i := 0; i < n; i++ {
		hour[i] = float64(rng.Intn(24))
		srcClass[i] = []string{"botnet", "tor_exit", "residential", "cloud"}[rng.Intn(4)]
		country[i] = countries[rng.Intn(len(countries))]

		// Attack mix mirrors honeypot logs: mostly background noise with
		// rarer, sharply patterned attack regimes (brute force ~12%, scans
		// ~15%, web exploits ~13%). Rare regimes are what separates
		// informed row selection from random sampling.
		var kind int
		switch p := rng.Float64(); {
		case p < 0.12:
			kind = 0
		case p < 0.27:
			kind = 1
		case p < 0.40:
			kind = 2
		default:
			kind = 3
		}
		switch kind {
		case 0: // SSH brute force: port 22, TCP, ssh, many short sessions.
			dstPort[i] = 22
			protocol[i] = "TCP"
			service[i] = "ssh"
			attack[i] = "brute_force"
			severity[i] = "high"
			duration[i] = 1 + rng.Float64()*5
			sessions[i] = float64(50 + rng.Intn(400))
			bytesIn[i] = 500 + rng.Float64()*2000
			bytesOut[i] = 100 + rng.Float64()*300
			alerted[i] = 1
			blocked[i] = btof(rng.Float64() < 0.9)
		case 1: // Port scan: UDP/TCP sweep, tiny bytes, short.
			dstPort[i] = float64(1 + rng.Intn(65535))
			protocol[i] = protocols[rng.Intn(2)]
			service[i] = services[rng.Intn(len(services))]
			attack[i] = "port_scan"
			severity[i] = "low"
			duration[i] = rng.Float64()
			sessions[i] = float64(1 + rng.Intn(5))
			bytesIn[i] = rng.Float64() * 200
			bytesOut[i] = rng.Float64() * 100
			alerted[i] = btof(rng.Float64() < 0.4)
			blocked[i] = btof(rng.Float64() < 0.2)
		case 2: // Web exploit: port 80/443, http, large bytes out.
			dstPort[i] = []float64{80, 443}[rng.Intn(2)]
			protocol[i] = "TCP"
			service[i] = "http"
			attack[i] = "web_exploit"
			severity[i] = "high"
			duration[i] = 5 + rng.Float64()*60
			sessions[i] = float64(1 + rng.Intn(20))
			bytesIn[i] = 2000 + rng.Float64()*8000
			bytesOut[i] = 10000 + rng.Float64()*90000
			alerted[i] = 1
			blocked[i] = btof(rng.Float64() < 0.7)
		default: // Benign-ish background.
			dstPort[i] = []float64{80, 443, 25, 21}[rng.Intn(4)]
			protocol[i] = protocols[rng.Intn(len(protocols))]
			service[i] = services[rng.Intn(len(services))]
			attack[i] = "none"
			severity[i] = "low"
			duration[i] = rng.Float64() * 30
			sessions[i] = float64(1 + rng.Intn(3))
			bytesIn[i] = rng.Float64() * 5000
			bytesOut[i] = rng.Float64() * 5000
			alerted[i] = 0
			blocked[i] = 0
		}
		success[i] = btof(attack[i] != "none" && blocked[i] == 0 && rng.Float64() < 0.5)
	}

	t := table.New("CY")
	mustAdd(t, table.NewNumeric("hour", hour))
	mustAdd(t, table.NewCategorical("src_class", srcClass))
	mustAdd(t, table.NewCategorical("country", country))
	mustAdd(t, table.NewNumeric("dst_port", dstPort))
	mustAdd(t, table.NewCategorical("protocol", protocol))
	mustAdd(t, table.NewCategorical("service", service))
	mustAdd(t, table.NewCategorical("attack_type", attack))
	mustAdd(t, table.NewCategorical("severity", severity))
	mustAdd(t, table.NewNumeric("bytes_in", bytesIn))
	mustAdd(t, table.NewNumeric("bytes_out", bytesOut))
	mustAdd(t, table.NewNumeric("duration", duration))
	mustAdd(t, table.NewNumeric("sessions", sessions))
	mustAdd(t, table.NewNumeric("alerted", alerted))
	mustAdd(t, table.NewNumeric("blocked", blocked))
	mustAdd(t, table.NewNumeric("success", success))

	planted := []PlantedRule{
		{
			Description: "SSH brute-force attacks hit port 22 with many sessions and high severity",
			Cols:        []string{"dst_port", "attack_type", "severity"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("dst_port").Nums[r] == 22 && t.Cell(r, "attack_type").Str == "brute_force"
			},
		},
		{
			Description: "web exploits exfiltrate large bytes_out over http",
			Cols:        []string{"service", "attack_type", "bytes_out"},
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "attack_type").Str == "web_exploit" && t.Column("bytes_out").Nums[r] >= 10000
			},
		},
		{
			Description: "port scans are short with tiny payloads and low severity",
			Cols:        []string{"attack_type", "duration", "severity"},
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "attack_type").Str == "port_scan" && t.Column("duration").Nums[r] <= 1
			},
		},
		{
			Description: "high-severity attacks are alerted",
			Cols:        []string{"severity", "alerted"},
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "severity").Str == "high" && t.Column("alerted").Nums[r] == 1
			},
		},
	}
	return &Dataset{Name: "CY", T: t, Planted: planted, Targets: []string{"attack_type"}}
}

// Spotify generates the SP stand-in (15 audio-feature columns) with planted
// popularity drivers.
func Spotify(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	genres := []string{"pop", "rock", "hiphop", "classical", "jazz", "electronic", "folk"}

	dance := make([]float64, n)
	energy := make([]float64, n)
	loud := make([]float64, n)
	speech := make([]float64, n)
	acoustic := make([]float64, n)
	instr := make([]float64, n)
	live := make([]float64, n)
	valence := make([]float64, n)
	tempo := make([]float64, n)
	durMs := make([]float64, n)
	key := make([]float64, n)
	mode := make([]float64, n)
	genre := make([]string, n)
	explicit := make([]float64, n)
	popularity := make([]float64, n)

	for i := 0; i < n; i++ {
		g := genres[rng.Intn(len(genres))]
		genre[i] = g
		// Audio archetypes are gapped so binning recovers them crisply:
		// dance-floor (pop/hiphop/electronic), acoustic (classical/jazz/
		// folk), and band (rock).
		switch g {
		case "pop", "hiphop", "electronic":
			dance[i] = 0.65 + rng.Float64()*0.3
			energy[i] = 0.65 + rng.Float64()*0.3
			acoustic[i] = rng.Float64() * 0.2
			instr[i] = rng.Float64() * 0.1
			loud[i] = -8 + rng.Float64()*6
		case "classical", "jazz", "folk":
			dance[i] = 0.05 + rng.Float64()*0.3
			energy[i] = 0.05 + rng.Float64()*0.3
			acoustic[i] = 0.7 + rng.Float64()*0.3
			instr[i] = 0.6 + rng.Float64()*0.4
			loud[i] = -28 + rng.Float64()*8
		default: // rock
			dance[i] = 0.4 + rng.Float64()*0.15
			energy[i] = 0.45 + rng.Float64()*0.15
			acoustic[i] = 0.3 + rng.Float64()*0.2
			instr[i] = 0.2 + rng.Float64()*0.2
			loud[i] = -17 + rng.Float64()*5
		}
		speech[i] = rng.Float64() * 0.15
		if g == "hiphop" {
			speech[i] = 0.3 + rng.Float64()*0.3
		}
		live[i] = rng.Float64() * 0.5
		valence[i] = rng.Float64()
		tempo[i] = 60 + rng.Float64()*140
		durMs[i] = 120000 + rng.Float64()*240000
		key[i] = float64(rng.Intn(12))
		mode[i] = float64(rng.Intn(2))
		explicit[i] = btof(g == "hiphop" && rng.Float64() < 0.75)

		// Planted popularity drivers with high confidence and gapped ranges:
		// dance-floor songs are popular, acoustic songs are niche, rock sits
		// in between.
		var pop float64
		switch {
		case dance[i] >= 0.65 && energy[i] >= 0.65:
			pop = 62 + rng.Float64()*28
			if g == "pop" {
				pop = math.Min(95, pop+8)
			}
		case instr[i] >= 0.6:
			pop = 8 + rng.Float64()*30
		default:
			pop = 42 + rng.Float64()*14
		}
		popularity[i] = math.Round(pop)
	}

	t := table.New("SP")
	mustAdd(t, table.NewNumeric("danceability", dance))
	mustAdd(t, table.NewNumeric("energy", energy))
	mustAdd(t, table.NewNumeric("loudness", loud))
	mustAdd(t, table.NewNumeric("speechiness", speech))
	mustAdd(t, table.NewNumeric("acousticness", acoustic))
	mustAdd(t, table.NewNumeric("instrumentalness", instr))
	mustAdd(t, table.NewNumeric("liveness", live))
	mustAdd(t, table.NewNumeric("valence", valence))
	mustAdd(t, table.NewNumeric("tempo", tempo))
	mustAdd(t, table.NewNumeric("duration_ms", durMs))
	mustAdd(t, table.NewNumeric("key", key))
	mustAdd(t, table.NewNumeric("mode", mode))
	mustAdd(t, table.NewCategorical("genre", genre))
	mustAdd(t, table.NewNumeric("explicit", explicit))
	mustAdd(t, table.NewNumeric("popularity", popularity))

	planted := []PlantedRule{
		{
			Description: "danceable, energetic songs are popular",
			Cols:        []string{"danceability", "energy", "popularity"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("danceability").Nums[r] >= 0.6 &&
					t.Column("energy").Nums[r] >= 0.6 &&
					t.Column("popularity").Nums[r] >= 60
			},
		},
		{
			Description: "instrumental acoustic songs are unpopular",
			Cols:        []string{"instrumentalness", "acousticness", "popularity"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("instrumentalness").Nums[r] >= 0.5 &&
					t.Column("acousticness").Nums[r] >= 0.6 &&
					t.Column("popularity").Nums[r] < 50
			},
		},
		{
			Description: "pop genre songs rank high",
			Cols:        []string{"genre", "popularity"},
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "genre").Str == "pop" && t.Column("popularity").Nums[r] >= 60
			},
		},
		{
			Description: "hip-hop tracks are speechy and often explicit",
			Cols:        []string{"genre", "speechiness", "explicit"},
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "genre").Str == "hiphop" && t.Column("speechiness").Nums[r] >= 0.2
			},
		},
		{
			Description: "loudness tracks energy",
			Cols:        []string{"loudness", "energy"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("energy").Nums[r] >= 0.6 && t.Column("loudness").Nums[r] >= -15
			},
		},
	}
	return &Dataset{Name: "SP", T: t, Planted: planted, Targets: []string{"popularity"}}
}

// CreditCard generates the CC stand-in: Time, V1..V28 PCA-like numeric
// features, Amount, Class (31 columns, all numeric — which is why CC has the
// slowest pre-processing in the paper's Figure 9: every column is binned).
func CreditCard(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t := table.New("CC")
	timeCol := make([]float64, n)
	class := make([]float64, n)
	vs := make([][]float64, 28)
	for j := range vs {
		vs[j] = make([]float64, n)
	}
	amount := make([]float64, n)
	for i := 0; i < n; i++ {
		timeCol[i] = float64(rng.Intn(172800))
		fraud := rng.Float64() < 0.05
		class[i] = btof(fraud)
		for j := 0; j < 28; j++ {
			vs[j][i] = rng.NormFloat64()
		}
		if fraud {
			// Planted fraud signature in V1, V3, V14 (mirrors the real
			// dataset's strongest fraud separators) and small amounts.
			vs[0][i] = -4 + rng.NormFloat64()
			vs[2][i] = -5 + rng.NormFloat64()
			vs[13][i] = -6 + rng.NormFloat64()
			amount[i] = 1 + rng.Float64()*120
		} else {
			amount[i] = math.Exp(rng.NormFloat64()*1.2 + 3)
		}
	}
	mustAdd(t, table.NewNumeric("Time", timeCol))
	for j := 0; j < 28; j++ {
		mustAdd(t, table.NewNumeric(fmt.Sprintf("V%d", j+1), vs[j]))
	}
	mustAdd(t, table.NewNumeric("Amount", amount))
	mustAdd(t, table.NewNumeric("Class", class))

	planted := []PlantedRule{
		{
			Description: "fraudulent transactions have extreme negative V1, V3, V14",
			Cols:        []string{"V1", "V3", "V14", "Class"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("Class").Nums[r] == 1 && t.Column("V14").Nums[r] < -3
			},
		},
		{
			Description: "fraudulent transactions are small",
			Cols:        []string{"Amount", "Class"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("Class").Nums[r] == 1 && t.Column("Amount").Nums[r] <= 121
			},
		},
	}
	return &Dataset{Name: "CC", T: t, Planted: planted, Targets: []string{"Class"}}
}

// USFunds generates the USF stand-in: a very wide table (298 columns) of
// fund metadata plus yearly return/ratio columns, used for wide-table
// stress (the paper lists USF at 298 columns).
func USFunds(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t := table.New("USF")
	categories := []string{"Large Blend", "Large Growth", "Small Value", "Bond", "International", "Sector"}

	symbol := make([]string, n)
	category := make([]string, n)
	family := make([]string, n)
	investment := make([]string, n)
	size := make([]string, n)
	rating := make([]float64, n)
	risk := make([]float64, n)
	expense := make([]float64, n)
	assets := make([]float64, n)
	yield := make([]float64, n)

	// Latent per-fund quality drives hundreds of return columns.
	quality := make([]float64, n)
	isBond := make([]bool, n)
	for i := 0; i < n; i++ {
		symbol[i] = fmt.Sprintf("FND%04d", i)
		category[i] = categories[rng.Intn(len(categories))]
		family[i] = fmt.Sprintf("Family%d", rng.Intn(25))
		investment[i] = []string{"Blend", "Growth", "Value"}[rng.Intn(3)]
		size[i] = []string{"Large", "Medium", "Small"}[rng.Intn(3)]
		quality[i] = rng.NormFloat64()
		isBond[i] = category[i] == "Bond"
		rating[i] = math.Max(1, math.Min(5, math.Round(3+quality[i])))
		risk[i] = math.Max(1, math.Min(5, math.Round(3-quality[i]+rng.NormFloat64()*0.5)))
		expense[i] = math.Max(0.01, 1.2-quality[i]*0.3+rng.NormFloat64()*0.2)
		assets[i] = math.Exp(rng.NormFloat64() + 6)
		yield[i] = math.Max(0, 2+btof(isBond[i])*2+rng.NormFloat64())
	}

	mustAdd(t, table.NewCategorical("fund_symbol", symbol))
	mustAdd(t, table.NewCategorical("category", category))
	mustAdd(t, table.NewCategorical("fund_family", family))
	mustAdd(t, table.NewCategorical("investment_type", investment))
	mustAdd(t, table.NewCategorical("size_type", size))
	mustAdd(t, table.NewNumeric("rating", rating))
	mustAdd(t, table.NewNumeric("risk_rating", risk))
	mustAdd(t, table.NewNumeric("expense_ratio", expense))
	mustAdd(t, table.NewNumeric("total_net_assets", assets))
	mustAdd(t, table.NewNumeric("yield", yield))

	// 288 numeric columns: returns, alphas, betas, ratios per year.
	kinds := []string{"return", "alpha", "beta", "sharpe", "stdev", "r_squared", "treynor", "sortino"}
	years := 36 // 8 kinds × 36 years = 288 columns
	for _, kind := range kinds {
		for y := 0; y < years; y++ {
			vals := make([]float64, n)
			market := rng.NormFloat64() * 5
			for i := 0; i < n; i++ {
				base := market + quality[i]*3 + rng.NormFloat64()*2
				if isBond[i] {
					base = market*0.2 + quality[i] + rng.NormFloat64()
				}
				switch kind {
				case "beta":
					vals[i] = 1 + quality[i]*0.05 + rng.NormFloat64()*0.2
					if isBond[i] {
						vals[i] *= 0.3
					}
				case "r_squared":
					vals[i] = math.Min(100, math.Max(0, 80+rng.NormFloat64()*10))
				default:
					vals[i] = base
				}
			}
			mustAdd(t, table.NewNumeric(fmt.Sprintf("fund_%s_%d", kind, 1985+y), vals))
		}
	}

	planted := []PlantedRule{
		{
			Description: "high-rating funds have low expense ratios",
			Cols:        []string{"rating", "expense_ratio"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("rating").Nums[r] >= 4 && t.Column("expense_ratio").Nums[r] <= 1.2
			},
		},
		{
			Description: "bond funds have low beta",
			Cols:        []string{"category", "fund_beta_1985"},
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "category").Str == "Bond" && t.Column("fund_beta_1985").Nums[r] < 0.6
			},
		},
	}
	return &Dataset{Name: "USF", T: t, Planted: planted, Targets: []string{"rating"}}
}

// BankLoans generates the BL stand-in (19 columns) with planted default
// drivers; this is the dataset the paper's user study ran *without* rule
// highlighting.
func BankLoans(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t := table.New("BL")
	nan := math.NaN()

	status := make([]string, n)
	amount := make([]float64, n)
	term := make([]string, n)
	score := make([]float64, n)
	income := make([]float64, n)
	job := make([]string, n)
	home := make([]string, n)
	purpose := make([]string, n)
	debt := make([]float64, n)
	history := make([]float64, n)
	delinq := make([]float64, n)
	accounts := make([]float64, n)
	problems := make([]float64, n)
	balance := make([]float64, n)
	openCredit := make([]float64, n)
	bankrupt := make([]float64, n)
	liens := make([]float64, n)
	years := make([]float64, n)
	region := make([]string, n)

	for i := 0; i < n; i++ {
		sc := 580 + rng.Float64()*270 // 580-850
		score[i] = math.Round(sc)
		inc := math.Exp(rng.NormFloat64()*0.5 + 11)
		income[i] = math.Round(inc)
		debt[i] = math.Round(inc * (0.1 + rng.Float64()*0.5) / 12)
		amount[i] = math.Round(5000 + rng.Float64()*45000)
		term[i] = []string{"Short Term", "Long Term"}[rng.Intn(2)]
		job[i] = []string{"< 1 year", "1-3 years", "4-9 years", "10+ years"}[rng.Intn(4)]
		home[i] = []string{"Rent", "Own Home", "Home Mortgage"}[rng.Intn(3)]
		purpose[i] = []string{"Debt Consolidation", "Home Improvements", "Business", "Medical", "Other"}[rng.Intn(5)]
		history[i] = math.Round(3 + rng.Float64()*30)
		accounts[i] = math.Round(2 + rng.Float64()*20)
		problems[i] = float64(rng.Intn(3))
		balance[i] = math.Round(rng.Float64() * 60000)
		openCredit[i] = math.Round(10000 + rng.Float64()*400000)
		bankrupt[i] = btof(rng.Float64() < 0.08)
		liens[i] = btof(rng.Float64() < 0.03)
		years[i] = math.Round(rng.Float64() * 25)
		region[i] = []string{"North", "South", "East", "West"}[rng.Intn(4)]
		if rng.Float64() < 0.1 {
			delinq[i] = nan // many loans have no delinquency record
		} else {
			delinq[i] = math.Round(rng.Float64() * 80)
		}

		// Planted default drivers: low score + high debt ratio charge off;
		// long-term large loans are riskier; bankruptcies hurt.
		debtRatio := debt[i] * 12 / inc
		p := 0.08
		if sc < 650 && debtRatio > 0.4 {
			p = 0.75
		} else if term[i] == "Long Term" && amount[i] > 35000 {
			p = 0.45
		}
		if bankrupt[i] == 1 {
			p += 0.2
		}
		if rng.Float64() < p {
			status[i] = "Charged Off"
		} else {
			status[i] = "Fully Paid"
		}
	}

	mustAdd(t, table.NewCategorical("loan_status", status))
	mustAdd(t, table.NewNumeric("current_loan_amount", amount))
	mustAdd(t, table.NewCategorical("term", term))
	mustAdd(t, table.NewNumeric("credit_score", score))
	mustAdd(t, table.NewNumeric("annual_income", income))
	mustAdd(t, table.NewCategorical("years_in_current_job", job))
	mustAdd(t, table.NewCategorical("home_ownership", home))
	mustAdd(t, table.NewCategorical("purpose", purpose))
	mustAdd(t, table.NewNumeric("monthly_debt", debt))
	mustAdd(t, table.NewNumeric("years_of_credit_history", history))
	mustAdd(t, table.NewNumeric("months_since_last_delinquent", delinq))
	mustAdd(t, table.NewNumeric("number_of_open_accounts", accounts))
	mustAdd(t, table.NewNumeric("number_of_credit_problems", problems))
	mustAdd(t, table.NewNumeric("current_credit_balance", balance))
	mustAdd(t, table.NewNumeric("maximum_open_credit", openCredit))
	mustAdd(t, table.NewNumeric("bankruptcies", bankrupt))
	mustAdd(t, table.NewNumeric("tax_liens", liens))
	mustAdd(t, table.NewNumeric("years_at_residence", years))
	mustAdd(t, table.NewCategorical("region", region))

	planted := []PlantedRule{
		{
			Description: "low credit score with high debt burden leads to charge-offs",
			Cols:        []string{"credit_score", "monthly_debt", "loan_status"},
			Holds: func(t *table.Table, r int) bool {
				ratio := t.Column("monthly_debt").Nums[r] * 12 / t.Column("annual_income").Nums[r]
				return t.Column("credit_score").Nums[r] < 650 && ratio > 0.4 &&
					t.Cell(r, "loan_status").Str == "Charged Off"
			},
		},
		{
			Description: "large long-term loans default more",
			Cols:        []string{"term", "current_loan_amount", "loan_status"},
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "term").Str == "Long Term" &&
					t.Column("current_loan_amount").Nums[r] > 35000 &&
					t.Cell(r, "loan_status").Str == "Charged Off"
			},
		},
		{
			Description: "bankruptcies raise default risk",
			Cols:        []string{"bankruptcies", "loan_status"},
			Holds: func(t *table.Table, r int) bool {
				return t.Column("bankruptcies").Nums[r] == 1 && t.Cell(r, "loan_status").Str == "Charged Off"
			},
		},
	}
	return &Dataset{Name: "BL", T: t, Planted: planted, Targets: []string{"loan_status"}}
}

// Generic generates a controlled synthetic table: nPatterns disjoint row
// clusters, each stamping a distinctive value combination on a subset of
// columns, plus uniform noise columns. Used by unit tests and ablations.
func Generic(nRows, nCols, nPatterns int, seed int64) *Dataset {
	if nPatterns < 1 {
		nPatterns = 1
	}
	if nCols < 3 {
		nCols = 3
	}
	rng := rand.New(rand.NewSource(seed))
	t := table.New("GEN")
	patternOf := make([]int, nRows)
	for i := range patternOf {
		patternOf[i] = rng.Intn(nPatterns)
	}
	// First column announces the pattern (the "target"); half the remaining
	// columns correlate with it, the rest are noise.
	label := make([]string, nRows)
	for i, p := range patternOf {
		label[i] = fmt.Sprintf("p%d", p)
	}
	mustAdd(t, table.NewCategorical("pattern", label))
	nSignal := (nCols - 1) / 2
	for c := 1; c < nCols; c++ {
		vals := make([]float64, nRows)
		signal := c-1 < nSignal
		for i := 0; i < nRows; i++ {
			if signal {
				vals[i] = float64(patternOf[i]*100) + rng.Float64()*10
			} else {
				vals[i] = rng.Float64() * 1000
			}
		}
		mustAdd(t, table.NewNumeric(fmt.Sprintf("c%d", c), vals))
	}
	var planted []PlantedRule
	for p := 0; p < nPatterns; p++ {
		p := p
		cols := []string{"pattern"}
		for c := 0; c < nSignal; c++ {
			cols = append(cols, fmt.Sprintf("c%d", c+1))
		}
		planted = append(planted, PlantedRule{
			Description: fmt.Sprintf("pattern p%d stamps its signal columns", p),
			Cols:        cols,
			Holds: func(t *table.Table, r int) bool {
				return t.Cell(r, "pattern").Str == fmt.Sprintf("p%d", p)
			},
		})
	}
	return &Dataset{Name: "GEN", T: t, Planted: planted, Targets: []string{"pattern"}}
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
