package subtab_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"subtab"
	"subtab/internal/core"
	"subtab/internal/serve"
)

// TestGoldenLargeModeFingerprintsSharded pins the local scatter/gather
// path against the *existing* large-mode golden files: a model whose bin
// codes were split across three shard stores (goroutine-per-shard fan-out,
// associative merge) must reproduce `<name>.large.fingerprint` byte for
// byte. 800 rows at 96 rows/block cut three ways puts every shard
// boundary off block alignment, so the merge is exercised, not dodged.
// This test never records — it reuses the files
// TestGoldenLargeModeFingerprints owns, so a divergence in the sharded
// path cannot hide behind a re-recording.
func TestGoldenLargeModeFingerprintsSharded(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			model := goldenModel(t, name, goldenConfig())
			dir := t.TempDir()
			paths := make([]string, 3)
			for i := range paths {
				paths[i] = filepath.Join(dir, fmt.Sprintf("%s.codes.%03d", name, i))
			}
			src, err := model.UseShardedStores(paths, 96)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".large.fingerprint"))
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
			}
			if got := goldenSelections(t, model, name, scale); got != string(want) {
				t.Errorf("sharded scaled selection diverged from the recorded large-mode golden for %s.\n"+
					"The scatter/gather merge must be byte-identical to the single-store scan.\n got:\n%s\nwant:\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenShardedHTTPCoordinator lifts the same guarantee over the
// wire: two server instances — a coordinator owning shard 0 and a worker
// owning shards 1 and 2 of one logical table — must together reproduce
// the recorded large-mode fingerprints, with the remote summaries
// fetched over real HTTP round trips. Never-recording, like above.
func TestGoldenShardedHTTPCoordinator(t *testing.T) {
	const name = "FL"
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	ds, err := subtab.GenerateDataset(name, 800, 41)
	if err != nil {
		t.Fatal(err)
	}
	coordDir, workerDir := t.TempDir(), t.TempDir()
	opts := goldenConfig()

	build := serve.NewService(serve.NewStore(serve.StoreOptions{Dir: coordDir}), opts)
	if _, err := build.AddTableSharded(name, ds.T, nil, 3, false); err != nil {
		t.Fatal(err)
	}
	// Hand shards 1 and 2 (and a copy of the model file) to the worker's
	// cache dir; the coordinator keeps shard 0.
	models, err := filepath.Glob(filepath.Join(coordDir, "*.subtab"))
	if err != nil || len(models) != 1 {
		t.Fatalf("model file glob: %v %v", models, err)
	}
	raw, err := os.ReadFile(models[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(workerDir, filepath.Base(models[0])), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := build.Store().ShardPaths(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if err := os.Rename(paths[i], filepath.Join(workerDir, filepath.Base(paths[i]))); err != nil {
			t.Fatal(err)
		}
	}

	worker := serve.NewService(serve.NewStore(serve.StoreOptions{Dir: workerDir, AllowMissingShards: true}), opts)
	srv := httptest.NewServer(serve.NewHandler(worker, nil))
	defer srv.Close()

	coord := serve.NewService(serve.NewStore(serve.StoreOptions{
		Dir:                coordDir,
		AllowMissingShards: true,
		PrepareModel: func(n string, m *core.Model) error {
			if m.ShardSource() == nil || m.ShardSource().Complete() {
				return nil
			}
			sampler, err := serve.NewShardSampler(n, m, serve.ShardPeersOptions{Peers: []string{srv.URL}})
			if err != nil {
				return err
			}
			m.SetShardSampler(sampler)
			return nil
		},
	}), opts)
	model, err := coord.Model(name)
	if err != nil {
		t.Fatal(err)
	}
	if src := model.ShardSource(); src == nil || src.Complete() {
		t.Fatal("coordinator should hold a partial shard source")
	}

	want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".large.fingerprint"))
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
	}
	if got := goldenSelections(t, model, name, scale); got != string(want) {
		t.Errorf("HTTP scatter/gather selection diverged from the recorded large-mode golden.\n got:\n%s\nwant:\n%s", got, want)
	}
}
