package subtab_test

import (
	"os"
	"path/filepath"
	"testing"

	"subtab"
)

// TestGoldenLargeModeFingerprintsOutOfCore pins the out-of-core selection
// path against the *existing* large-mode golden files: a model whose bin
// codes were exported to an mmap'd code store (inline codes dropped) must
// reproduce `<name>.large.fingerprint` byte for byte, with the sampled
// tuple-vector slab resident and with it force-spilled to disk. This test
// never records — it reuses the files TestGoldenLargeModeFingerprints
// owns, so a divergence in the store-backed path cannot hide behind a
// re-recording.
func TestGoldenLargeModeFingerprintsOutOfCore(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	spill := *scale
	spill.SlabBudgetBytes = 1 // 256 sampled rows x 16 dims x 4B >> 1B: always spills
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			model := goldenModel(t, name, goldenConfig())
			cs, err := model.UseCodeStoreFile(filepath.Join(t.TempDir(), name+".codes"), 96)
			if err != nil {
				t.Fatal(err)
			}
			defer cs.Close()
			path := filepath.Join("testdata", "golden", name+".large.fingerprint")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
			}
			if got := goldenSelections(t, model, name, scale); got != string(want) {
				t.Errorf("out-of-core scaled selection diverged from the recorded large-mode golden for %s.\n"+
					"The code store path must be byte-identical to the in-memory path.\n got:\n%s\nwant:\n%s", name, got, want)
			}
			if got := goldenSelections(t, model, name, &spill); got != string(want) {
				t.Errorf("spilled-slab scaled selection diverged from the recorded large-mode golden for %s.\n got:\n%s\nwant:\n%s", name, got, want)
			}
		})
	}
}

// TestOutOfCoreEvaluationStack pins that the paper's evaluation stack —
// metrics, rule mining, baselines — keeps working on a store-backed model
// (it reads codes through the shared accessor / a materialized copy; a
// regression here used to panic on the nil inline-code matrix).
func TestOutOfCoreEvaluationStack(t *testing.T) {
	model := goldenModel(t, "FL", goldenConfig())
	cs, err := model.UseCodeStoreFile(filepath.Join(t.TempDir(), "eval.codes"), 96)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	st, err := model.Select(6, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := subtab.MineRules(model, subtab.MiningOptions{MinSupport: 0.1, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	e := subtab.NewEvaluator(model, rs, 0.5)
	score := e.Combined(st.AsMetricSubTable())
	if score < 0 || score > 1 {
		t.Fatalf("combined informativeness = %v, want a fraction", score)
	}
	if _, err := subtab.RandomBaseline(e, subtab.RandomBaselineOptions{K: 6, L: 5, MaxIters: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenOutOfCoreModelRoundTrip extends the golden guarantee across
// persistence: saving the store-backed model (modelio v5 external
// reference) and loading it back must still reproduce the recorded
// large-mode fingerprints.
func TestGoldenOutOfCoreModelRoundTrip(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	dir := t.TempDir()
	model := goldenModel(t, "FL", goldenConfig())
	cs, err := model.UseCodeStoreFile(filepath.Join(dir, "fl.codes"), 96)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if err := subtab.SaveModelFile(filepath.Join(dir, "fl.subtab"), model); err != nil {
		t.Fatal(err)
	}
	loaded, err := subtab.LoadModelFile(filepath.Join(dir, "fl.subtab"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "FL.large.fingerprint"))
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
	}
	if got := goldenSelections(t, loaded, "FL", scale); got != string(want) {
		t.Errorf("reloaded out-of-core model diverged from the recorded large-mode golden.\n got:\n%s\nwant:\n%s", got, want)
	}
}
