package subtab_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"subtab"
)

// TestPublicAPIPipeline exercises the whole public surface end to end:
// generate → preprocess → select → query-select → mine → highlight →
// evaluate → baselines.
func TestPublicAPIPipeline(t *testing.T) {
	ds, err := subtab.GenerateDataset("CY", 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 16, Epochs: 2, Seed: 1}
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := model.Select(5, 5, ds.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if st.View.NumRows() != 5 || st.View.NumCols() != 5 {
		t.Fatalf("view dims = %dx%d", st.View.NumRows(), st.View.NumCols())
	}

	q := &subtab.Query{Where: []subtab.Predicate{{Col: "severity", Op: subtab.Eq, Str: "high"}}}
	qst, err := model.SelectQuery(q, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(qst.SourceRows) == 0 {
		t.Fatal("query selection empty")
	}

	rs, err := subtab.MineRules(model, subtab.MiningOptions{MinSupport: 0.1, MinConfidence: 0.5, MinRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules mined")
	}
	hl, perRow := subtab.Highlight(model, rs, st)
	if len(perRow) != 5 {
		t.Fatalf("perRow = %d", len(perRow))
	}
	_ = st.View.Render(hl)

	e := subtab.NewEvaluator(model, rs, 0.5)
	score := e.Combined(st.AsMetricSubTable())
	if score <= 0 || score > 1 {
		t.Fatalf("score = %v", score)
	}

	ran, err := subtab.RandomBaseline(e, subtab.RandomBaselineOptions{K: 5, L: 5, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Score < 0 {
		t.Fatal("bad RAN score")
	}
	nc, err := subtab.NaiveClusteringBaseline(e, subtab.NCBaselineOptions{K: 5, L: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(nc.ST.Rows) == 0 {
		t.Fatal("NC empty")
	}
}

// TestPublicAPISaveLoad verifies the persistence contract at the facade
// level: a saved-then-loaded model selects identically without re-running
// pre-processing.
func TestPublicAPISaveLoad(t *testing.T) {
	ds, err := subtab.GenerateDataset("FL", 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 16, Epochs: 2, Seed: 2}
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := subtab.SaveModel(&buf, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := subtab.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Select(6, 4, ds.Targets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(6, 4, ds.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if want.View.String() != got.View.String() {
		t.Fatalf("selection diverged after save/load:\nsaved:\n%sloaded:\n%s", want.View, got.View)
	}

	path := filepath.Join(t.TempDir(), "fl.subtab")
	if err := subtab.SaveModelFile(path, model); err != nil {
		t.Fatal(err)
	}
	fromFile, err := subtab.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.T.NumRows() != model.T.NumRows() {
		t.Fatalf("file round-trip rows = %d, want %d", fromFile.T.NumRows(), model.T.NumRows())
	}
}

func TestPublicAPICSV(t *testing.T) {
	csv := "a,b\n1,x\n2,y\n3,x\n"
	tab, err := subtab.ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 2 {
		t.Fatalf("dims = %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Column("a").Kind != subtab.Numeric || tab.Column("b").Kind != subtab.Categorical {
		t.Fatal("kind inference failed")
	}
}

func TestPublicAPIBuildTable(t *testing.T) {
	tab := subtab.NewTable("mini")
	if err := tab.AddColumn(subtab.NewNumericColumn("n", []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(subtab.NewCategoricalColumn("c", []string{"a", "b"})); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatal("row count")
	}
}

func TestDatasetNames(t *testing.T) {
	names := subtab.DatasetNames()
	if len(names) != 6 {
		t.Fatalf("datasets = %v", names)
	}
	for _, n := range names {
		if _, err := subtab.GenerateDataset(n, 50, 1); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}
