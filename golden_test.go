package subtab_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"subtab"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fingerprints")

// goldenConfig pins every seed of the pipeline so the selection is a pure
// function of the code. Workers=1: hogwild embedding training is the one
// intentionally nondeterministic stage.
func goldenConfig() subtab.Options {
	opt := subtab.DefaultOptions()
	opt.Bins.Seed = 41
	opt.Corpus.Seed = 41
	opt.Embedding = subtab.EmbeddingOptions{Dim: 16, Epochs: 2, Seed: 41, Workers: 1}
	opt.ClusterSeed = 41
	return opt
}

// goldenFingerprint renders every observable part of a selection.
func goldenFingerprint(st *subtab.SubTable) string {
	return fmt.Sprintf("%v|%v|%v|%s", st.SourceRows, st.ColIdx, st.Cols, st.View.Render(nil))
}

// TestGoldenSelectionFingerprints locks the full pipeline's output on three
// of the paper's datasets: any refactor that changes a single byte of a
// selection — binning boundaries, corpus sampling, embedding arithmetic,
// clustering, tie-breaks, rendering — fails here and must either be fixed
// or deliberately re-record the goldens with `go test -run Golden -update`.
// Earlier PRs guarded cross-refactor determinism ad hoc (stash + compare);
// the checked-in fingerprints make the guard permanent and cross-PR.
func TestGoldenSelectionFingerprints(t *testing.T) {
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			ds, err := subtab.GenerateDataset(name, 800, 41)
			if err != nil {
				t.Fatal(err)
			}
			model, err := subtab.Preprocess(ds.T, goldenConfig())
			if err != nil {
				t.Fatal(err)
			}
			whole, err := model.Select(8, 6, nil)
			if err != nil {
				t.Fatal(err)
			}
			targeted, err := model.Select(6, 4, ds.Targets[:1])
			if err != nil {
				t.Fatal(err)
			}
			got := "whole:\n" + goldenFingerprint(whole) + "\ntargeted:\n" + goldenFingerprint(targeted)

			path := filepath.Join("testdata", "golden", name+".fingerprint")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("selection fingerprint for %s diverged from %s.\n"+
					"If this change is intentional, re-record with `go test -run Golden -update`.\n got:\n%s\nwant:\n%s",
					name, path, got, want)
			}
		})
	}
}
