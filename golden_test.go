package subtab_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"subtab"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fingerprints")

// goldenConfig pins every seed of the pipeline so the selection is a pure
// function of the code; embedding training is deterministic at any Workers
// setting, so no stage needs special-casing.
func goldenConfig() subtab.Options {
	opt := subtab.DefaultOptions()
	opt.Bins.Seed = 41
	opt.Corpus.Seed = 41
	opt.Embedding = subtab.EmbeddingOptions{Dim: 16, Epochs: 2, Seed: 41}
	opt.ClusterSeed = 41
	return opt
}

// goldenFingerprint renders every observable part of a selection.
func goldenFingerprint(st *subtab.SubTable) string {
	return fmt.Sprintf("%v|%v|%v|%s", st.SourceRows, st.ColIdx, st.Cols, st.View.Render(nil))
}

// TestGoldenSelectionFingerprints locks the full pipeline's output on three
// of the paper's datasets: any refactor that changes a single byte of a
// selection — binning boundaries, corpus sampling, embedding arithmetic,
// clustering, tie-breaks, rendering — fails here and must either be fixed
// or deliberately re-record the goldens with `go test -run Golden -update`.
// Earlier PRs guarded cross-refactor determinism ad hoc (stash + compare);
// the checked-in fingerprints make the guard permanent and cross-PR.
func TestGoldenSelectionFingerprints(t *testing.T) {
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			model := goldenModel(t, name, goldenConfig())
			checkGolden(t, name+".fingerprint", goldenSelections(t, model, name, nil))
		})
	}
}

// TestGoldenScaledBelowThreshold pins the large-table mode's gate: with the
// scaled mode configured but every table below its threshold, selections
// must match the *exact-path* golden fingerprints byte for byte. This test
// never records — it reuses the files TestGoldenSelectionFingerprints owns,
// so a gate leak cannot hide behind a stale recording.
func TestGoldenScaledBelowThreshold(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1_000_000, SampleBudget: 64, BatchSize: 32, MaxIter: 5}
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			opt := goldenConfig()
			opt.Scale = *scale // model-wide, and overridden per call below
			model := goldenModel(t, name, opt)
			got := goldenSelections(t, model, name, scale)
			path := filepath.Join("testdata", "golden", name+".fingerprint")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("below-threshold scaled selection diverged from the exact path for %s.\n"+
					"The scale gate must be a no-op below Threshold.\n got:\n%s\nwant:\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenLargeModeFingerprints locks the scaled path's own output:
// mini-batch mode force-enabled (threshold 1) with a budget below the table
// size, so the stratified sampler, the mini-batch clustering and the
// candidate-only re-rank all execute. These fingerprints are recorded
// separately from the exact ones (`<name>.large.fingerprint`).
func TestGoldenLargeModeFingerprints(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			model := goldenModel(t, name, goldenConfig())
			checkGolden(t, name+".large.fingerprint", goldenSelections(t, model, name, scale))
		})
	}
}

// goldenModel generates dataset `name` at golden size and pre-processes it.
func goldenModel(t *testing.T, name string, opt subtab.Options) *subtab.Model {
	t.Helper()
	ds, err := subtab.GenerateDataset(name, 800, 41)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// goldenSelections renders the whole-table and targeted selections (scale
// nil = the model's configured mode).
func goldenSelections(t *testing.T, model *subtab.Model, name string, scale *subtab.ScaleOptions) string {
	t.Helper()
	ds, err := subtab.GenerateDataset(name, 800, 41)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := model.SelectWith(nil, 8, 6, nil, scale)
	if err != nil {
		t.Fatal(err)
	}
	targeted, err := model.SelectWith(nil, 6, 4, ds.Targets[:1], scale)
	if err != nil {
		t.Fatal(err)
	}
	return "whole:\n" + goldenFingerprint(whole) + "\ntargeted:\n" + goldenFingerprint(targeted)
}

// checkGolden compares got against testdata/golden/<file>, rewriting it
// under -update.
func checkGolden(t *testing.T, file, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", file)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("selection fingerprint diverged from %s.\n"+
			"If this change is intentional, re-record with `go test -run Golden -update`.\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}
