package subtab_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"subtab"
	"subtab/internal/core"
	"subtab/internal/serve"
)

// TestGoldenFingerprintsPagedColumns pins the paged raw-column path against
// the *existing* golden files: a model whose displayed columns were exported
// to an mmap'd column store (inline cells dropped, views gathered block by
// block) must reproduce the exact-path fingerprints byte for byte, and —
// with the bin codes paged out too, the full out-of-core shape — the
// large-mode fingerprints. This test never records: it reuses the files the
// in-memory golden tests own, so a divergence in the paged render path
// cannot hide behind a re-recording.
func TestGoldenFingerprintsPagedColumns(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()

			// Paged columns alone, exact selection path.
			model := goldenModel(t, name, goldenConfig())
			cols, err := model.UseColumnStoreFile(filepath.Join(dir, name+".cols"), 96)
			if err != nil {
				t.Fatal(err)
			}
			defer cols.Close()
			if !model.CellsPaged() {
				t.Fatal("inline cells were not dropped")
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".fingerprint"))
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
			}
			if got := goldenSelections(t, model, name, nil); got != string(want) {
				t.Errorf("paged-column exact selection diverged from the recorded golden for %s.\n"+
					"Views gathered from the column store must be byte-identical to SubTableView.\n got:\n%s\nwant:\n%s", name, got, want)
			}

			// Codes and columns both paged (the serving layer's out-of-core
			// shape), scaled selection path.
			ooc := goldenModel(t, name, goldenConfig())
			cs, err := ooc.UseCodeStoreFile(filepath.Join(dir, name+".codes"), 96)
			if err != nil {
				t.Fatal(err)
			}
			defer cs.Close()
			ocols, err := ooc.UseColumnStoreFile(filepath.Join(dir, name+".ooc.cols"), 96)
			if err != nil {
				t.Fatal(err)
			}
			defer ocols.Close()
			wantLarge, err := os.ReadFile(filepath.Join("testdata", "golden", name+".large.fingerprint"))
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
			}
			if got := goldenSelections(t, ooc, name, scale); got != string(wantLarge) {
				t.Errorf("fully paged scaled selection diverged from the recorded large-mode golden for %s.\n got:\n%s\nwant:\n%s", name, got, wantLarge)
			}
		})
	}
}

// TestGoldenLargeModeFingerprintsShardedColumns pins the sharded column
// path locally: codes and raw columns both split three ways at the same row
// cuts (800 rows at 96 rows/block keeps every cut off block alignment), so
// view assembly gathers across shard-local stores. Never-recording.
func TestGoldenLargeModeFingerprintsShardedColumns(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	for _, name := range []string{"FL", "SP", "CY"} {
		t.Run(name, func(t *testing.T) {
			model := goldenModel(t, name, goldenConfig())
			dir := t.TempDir()
			paths := make([]string, 3)
			colPaths := make([]string, 3)
			for i := range paths {
				paths[i] = filepath.Join(dir, fmt.Sprintf("%s.codes.%03d", name, i))
				colPaths[i] = filepath.Join(dir, fmt.Sprintf("%s.cols.%03d", name, i))
			}
			src, err := model.UseShardedStores(paths, 96)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			cells, err := model.UseShardedColumnStores(colPaths, 96)
			if err != nil {
				t.Fatal(err)
			}
			defer cells.Close()
			if !model.CellsPaged() {
				t.Fatal("inline cells were not dropped")
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".large.fingerprint"))
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
			}
			if got := goldenSelections(t, model, name, scale); got != string(want) {
				t.Errorf("sharded-column scaled selection diverged from the recorded large-mode golden for %s.\n got:\n%s\nwant:\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenPagedModelRoundTrip extends the golden guarantee across
// persistence: saving a model whose codes and raw columns are both external
// (modelio v7 schema husk + column-store reference) and loading it back must
// still reproduce the recorded fingerprints.
func TestGoldenPagedModelRoundTrip(t *testing.T) {
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	dir := t.TempDir()
	model := goldenModel(t, "FL", goldenConfig())
	cs, err := model.UseCodeStoreFile(filepath.Join(dir, "fl.codes"), 96)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cols, err := model.UseColumnStoreFile(filepath.Join(dir, "fl.cols"), 96)
	if err != nil {
		t.Fatal(err)
	}
	defer cols.Close()
	if err := subtab.SaveModelFile(filepath.Join(dir, "fl.subtab"), model); err != nil {
		t.Fatal(err)
	}
	loaded, err := subtab.LoadModelFile(filepath.Join(dir, "fl.subtab"))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.CellsPaged() {
		t.Fatal("reloaded model should keep its cells paged")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "FL.large.fingerprint"))
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
	}
	if got := goldenSelections(t, loaded, "FL", scale); got != string(want) {
		t.Errorf("reloaded paged model diverged from the recorded large-mode golden.\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenShardedColumnsHTTPCoordinator lifts shard-local rendering over
// the wire: the coordinator owns shard 0's code and column files, the worker
// owns shards 1 and 2 — so the coordinator renders a selection by fetching
// remote rows' cells from the worker (POST /shards/{name}/{idx}/cells). The
// result must match the recorded large-mode fingerprints byte for byte.
func TestGoldenShardedColumnsHTTPCoordinator(t *testing.T) {
	const name = "FL"
	scale := &subtab.ScaleOptions{Threshold: 1, SampleBudget: 256, BatchSize: 128, MaxIter: 50}
	ds, err := subtab.GenerateDataset(name, 800, 41)
	if err != nil {
		t.Fatal(err)
	}
	coordDir, workerDir := t.TempDir(), t.TempDir()
	opts := goldenConfig()

	build := serve.NewService(serve.NewStore(serve.StoreOptions{Dir: coordDir}), opts)
	if _, err := build.AddTableSharded(name, ds.T, nil, 3, false); err != nil {
		t.Fatal(err)
	}
	// Hand shards 1 and 2 — code files AND column files — plus a copy of the
	// model file to the worker's cache dir; the coordinator keeps shard 0.
	models, err := filepath.Glob(filepath.Join(coordDir, "*.subtab"))
	if err != nil || len(models) != 1 {
		t.Fatalf("model file glob: %v %v", models, err)
	}
	raw, err := os.ReadFile(models[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(workerDir, filepath.Base(models[0])), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := build.Store().ShardPaths(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	colPaths, err := build.Store().ColumnShardPaths(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		for _, p := range []string{paths[i], colPaths[i]} {
			if err := os.Rename(p, filepath.Join(workerDir, filepath.Base(p))); err != nil {
				t.Fatal(err)
			}
		}
	}

	worker := serve.NewService(serve.NewStore(serve.StoreOptions{Dir: workerDir, AllowMissingShards: true}), opts)
	srv := httptest.NewServer(serve.NewHandler(worker, nil))
	defer srv.Close()

	coord := serve.NewService(serve.NewStore(serve.StoreOptions{
		Dir:                coordDir,
		AllowMissingShards: true,
		PrepareModel: func(n string, m *core.Model) error {
			if m.ShardSource() == nil || m.ShardSource().Complete() {
				return nil
			}
			sampler, err := serve.NewShardSampler(n, m, serve.ShardPeersOptions{Peers: []string{srv.URL}})
			if err != nil {
				return err
			}
			m.SetShardSampler(sampler)
			return nil
		},
	}), opts)
	model, err := coord.Model(name)
	if err != nil {
		t.Fatal(err)
	}
	if sc := model.ShardCells(); sc == nil || sc.Complete() {
		t.Fatal("coordinator should hold a partial column shard source")
	}

	want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".large.fingerprint"))
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
	}
	if got := goldenSelections(t, model, name, scale); got != string(want) {
		t.Errorf("HTTP shard-local rendering diverged from the recorded large-mode golden.\n got:\n%s\nwant:\n%s", got, want)
	}
}
