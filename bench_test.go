// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), one testing.B benchmark per artifact, plus micro-benchmarks of the
// pipeline stages. Shapes, not absolute times, are the reproduction target;
// see EXPERIMENTS.md for the paper-vs-measured record.
package subtab_test

import (
	"testing"

	"subtab"
	"subtab/internal/baselines"
	"subtab/internal/binning"
	"subtab/internal/cluster"
	"subtab/internal/corpus"
	"subtab/internal/datagen"
	"subtab/internal/experiments"
	"subtab/internal/f32"
	"subtab/internal/metrics"
	"subtab/internal/rules"
	"subtab/internal/word2vec"
)

// benchLab builds the shared bench-scale lab once.
func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	l := experiments.NewLab(42)
	l.Rows = map[string]int{"FL": 3000, "CC": 2500, "SP": 2500, "CY": 2000, "BL": 2500, "USF": 500}
	l.Workers = 0
	return l
}

// BenchmarkTable1UserStudy regenerates Table 1 + Figure 5 (the simulated
// user study over SP, FL and BL).
func BenchmarkTable1UserStudy(b *testing.B) {
	l := benchLab(b)
	if _, err := l.UserStudy(); err != nil { // warm caches outside the loop
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.UserStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Simulation regenerates Figure 6 (EDA-session fragment
// capture on CY, widths 3-7).
func BenchmarkFig6Simulation(b *testing.B) {
	l := benchLab(b)
	if _, err := l.Prepare("CY"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Fig6(24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7SlowBaselines regenerates Figure 7 (quality and relative
// time of EmbDI, MAB, semi-greedy and RAN vs SubTab on FL).
func BenchmarkFig7SlowBaselines(b *testing.B) {
	l := benchLab(b)
	if _, err := l.Prepare("FL"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Quality regenerates Figure 8 (diversity / cell coverage /
// combined for SubTab, RAN, NC over FL, SP, CY).
func BenchmarkFig8Quality(b *testing.B) {
	l := benchLab(b)
	for _, ds := range []string{"FL", "SP", "CY"} {
		if _, err := l.Prepare(ds); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Preprocess measures the pre-processing phase (binning +
// corpus + embedding) on the FL dataset — the tall bars of Figure 9.
func BenchmarkFig9Preprocess(b *testing.B) {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 3, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := subtab.Preprocess(ds.T, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Selection measures the per-display selection phase — the
// short bars of Figure 9 (the interactivity claim).
func BenchmarkFig9Selection(b *testing.B) {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 3, Seed: 1}
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Select(10, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Tuning regenerates Figure 10 (cell coverage under varied
// bins / support / confidence for fixed sub-tables, FL+SP average).
func BenchmarkFig10Tuning(b *testing.B) {
	l := benchLab(b)
	for _, ds := range []string{"FL", "SP"} {
		if _, err := l.Prepare(ds); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the pipeline stages and ablations.
// ---------------------------------------------------------------------------

func benchBinned(b *testing.B, n int) *binning.Binned {
	b.Helper()
	ds, err := datagen.ByName("FL", n, 1)
	if err != nil {
		b.Fatal(err)
	}
	bn, err := binning.Bin(ds.T, binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return bn
}

// BenchmarkBinningKDE measures KDE-valley binning of the FL table.
func BenchmarkBinningKDE(b *testing.B) {
	ds, err := datagen.ByName("FL", 5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binning.Bin(ds.T, binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAprioriMining measures rule mining at the paper's default
// thresholds (support 0.1, confidence 0.6, min size 3).
func BenchmarkAprioriMining(b *testing.B) {
	bn := benchBinned(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rules.Mine(bn, rules.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWord2VecTraining measures skip-gram training over the tabular
// corpus (tuple-sentences, the default).
func BenchmarkWord2VecTraining(b *testing.B) {
	bn := benchBinned(b, 3000)
	sents := corpus.Build(bn, corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		word2vec.Train(sents, word2vec.Options{Dim: 24, Epochs: 3, Seed: 1})
	}
}

// benchRowMatrix builds the flat row-vector matrix the Select path feeds to
// k-means: one mean-pooled tuple-vector per row.
func benchRowMatrix(b *testing.B, n int) f32.Matrix {
	b.Helper()
	bn := benchBinned(b, n)
	sents := corpus.Build(bn, corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 1})
	model := word2vec.Train(sents, word2vec.Options{Dim: 24, Epochs: 2, Seed: 1})
	pts := f32.New(bn.NumRows(), model.Dim())
	for r := 0; r < bn.NumRows(); r++ {
		v := pts.Row(r)
		for c := 0; c < bn.NumCols(); c++ {
			if cv := model.Vector(bn.Item(c, r)); cv != nil {
				f32.Add(v, cv)
			}
		}
	}
	return pts
}

// BenchmarkKMeansRows measures clustering 3000 row vectors into 10 clusters
// through the flat-matrix path Select uses.
func BenchmarkKMeansRows(b *testing.B) {
	pts := benchRowMatrix(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeansMatrix(pts, 10, cluster.Options{Seed: 1})
	}
}

// BenchmarkKMeansRowsSliceAPI measures the same clustering through the
// slice-of-slices compatibility wrapper (the packing cost is the delta).
func BenchmarkKMeansRowsSliceAPI(b *testing.B) {
	rows := benchRowMatrix(b, 3000).Rows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeans(rows, 10, cluster.Options{Seed: 1})
	}
}

// BenchmarkCellCoverage measures one combined-score evaluation — the unit
// of work for RAN, MAB and greedy.
func BenchmarkCellCoverage(b *testing.B) {
	bn := benchBinned(b, 5000)
	rs, err := rules.Mine(bn, rules.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := metrics.NewEvaluator(bn, rs, 0.5)
	st := metrics.SubTable{Rows: []int{1, 100, 500, 900, 1500, 2000, 2500, 3000, 4000, 4900},
		Cols: []int{0, 4, 9, 10, 14, 16, 17, 20, 22, 24}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Combined(st)
	}
}

// BenchmarkGreedyRowSelection measures Algorithm 1's inner greedy loop on a
// single column combination.
func BenchmarkGreedyRowSelection(b *testing.B) {
	bn := benchBinned(b, 1500)
	rs, err := rules.Mine(bn, rules.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := metrics.NewEvaluator(bn, rs, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.Greedy(e, baselines.GreedyOptions{K: 10, L: 10, RandomOrder: true, MaxCombos: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations called out in DESIGN.md §8.
// ---------------------------------------------------------------------------

// BenchmarkAblationColumnStrategy compares the pattern-group column
// selection (default) against the literal Algorithm 2 centroid step by
// reporting their combined scores as custom metrics.
func BenchmarkAblationColumnStrategy(b *testing.B) {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	bn, err := binning.Bin(ds.T, binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rs, err := rules.Mine(bn, rules.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := metrics.NewEvaluator(bn, rs, 0.5)
	for i := 0; i < b.N; i++ {
		for _, strat := range []struct {
			name string
			cs   subtab.Options
		}{
			{"patternGroups", func() subtab.Options {
				o := subtab.DefaultOptions()
				o.Columns = subtab.PatternGroups
				return o
			}()},
			{"centroids", func() subtab.Options {
				o := subtab.DefaultOptions()
				o.Columns = subtab.Centroids
				return o
			}()},
		} {
			opt := strat.cs
			opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 3, Seed: 1}
			model, err := subtab.Preprocess(ds.T, opt)
			if err != nil {
				b.Fatal(err)
			}
			st, err := model.Select(10, 10, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(e.Combined(st.AsMetricSubTable()), strat.name+"_combined")
		}
	}
}

// BenchmarkAblationCorpus compares tuple-only against tuple+column
// sentence corpora (the paper's corpus includes column-sentences; see
// DESIGN.md for why the default here is tuple-only).
func BenchmarkAblationCorpus(b *testing.B) {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	bn, err := binning.Bin(ds.T, binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rs, err := rules.Mine(bn, rules.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := metrics.NewEvaluator(bn, rs, 0.5)
	for i := 0; i < b.N; i++ {
		for _, cfg := range []struct {
			name    string
			columns bool
		}{{"tupleOnly", false}, {"withColumnSentences", true}} {
			opt := subtab.DefaultOptions()
			opt.Corpus = subtab.CorpusOptions{MaxSentences: 100_000, TupleSentences: true, ColumnSentences: cfg.columns, Seed: 1}
			opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 3, Seed: 1}
			model, err := subtab.Preprocess(ds.T, opt)
			if err != nil {
				b.Fatal(err)
			}
			st, err := model.Select(10, 10, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(e.Combined(st.AsMetricSubTable()), cfg.name+"_combined")
		}
	}
}
